"""Tests for the extension experiments (adaptive attacks, forgetting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import REGISTRY, adaptive_attacks, forgetting
from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace


class TestRegistry:
    def test_extensions_registered(self):
        assert "adaptive-attacks" in REGISTRY
        assert "forgetting" in REGISTRY


class TestAdaptiveAttacks:
    @pytest.fixture(scope="class")
    def result(self):
        return adaptive_attacks.run(n_runs=10, seed=0)

    def test_all_strategies_measured(self, result):
        assert set(result.outcomes) == {
            "naive_tight",
            "camouflage",
            "ramp",
            "duty_cycle",
        }

    def test_naive_is_most_detectable(self, result):
        naive_auc = result.outcomes["naive_tight"].auc
        assert naive_auc > 0.9
        assert naive_auc >= max(o.auc for o in result.outcomes.values()) - 0.05

    def test_camouflage_evades(self, result):
        # At small run counts camouflage and duty-cycling can swap rank;
        # both must clearly beat the naive channel at evading.
        assert result.most_evasive in ("camouflage", "duty_cycle")
        assert (
            result.outcomes["camouflage"].auc
            < result.outcomes["naive_tight"].auc - 0.1
        )

    def test_camouflage_pays_damage_cost(self, result):
        # Wide recruited ratings clip at the scale top: less shift.
        assert (
            result.outcomes["camouflage"].damage
            < result.outcomes["naive_tight"].damage
        )

    def test_all_strategies_do_damage(self, result):
        for name, outcome in result.outcomes.items():
            assert outcome.damage > 0.0, name

    def test_report_renders(self, result):
        report = adaptive_attacks.format_report(result)
        assert "camouflage" in report
        assert "damage" in report


class TestCampaignStartMonth:
    def test_no_unfair_ratings_before_start(self):
        config = MarketplaceConfig(
            n_reliable=60,
            n_careless=30,
            n_pc=30,
            n_months=4,
            p_rate=0.04,
            campaign_start_month=2,
        )
        world = generate_marketplace(config, np.random.default_rng(0))
        all_ratings = world.store.all_ratings()
        early_unfair = all_ratings.between(0.0, 60.0).unfair_only()
        late_unfair = all_ratings.between(60.0, 120.0).unfair_only()
        assert len(early_unfair) == 0
        assert len(late_unfair) > 0

    def test_negative_start_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MarketplaceConfig(campaign_start_month=-1)


class TestForgetting:
    @pytest.fixture(scope="class")
    def result(self):
        config = MarketplaceConfig(
            n_reliable=120,
            n_careless=60,
            n_pc=60,
            n_months=8,
            p_rate=0.04,
            campaign_start_month=4,
        )
        return forgetting.run(seed=0, switch_month=4, config=config)

    def test_all_factors_measured(self, result):
        assert set(result.outcomes) == set(forgetting.FACTORS)

    def test_no_detection_before_switch(self, result):
        for outcome in result.outcomes.values():
            assert np.all(outcome.detection_by_month[: result.switch_month] < 0.1)

    def test_forgetting_recovers_faster(self, result):
        final_with = result.detection_at(0.5, -1)
        final_without = result.detection_at(1.0, -1)
        assert final_with > final_without + 0.2

    def test_forgetting_keeps_false_alarms_low(self, result):
        for outcome in result.outcomes.values():
            assert outcome.final_false_alarm <= 0.1

    def test_trust_shield_without_forgetting(self, result):
        # Pre-built honest capital keeps PC trust above threshold for
        # months when evidence never decays.
        no_forget = result.outcomes[1.0]
        switch = result.switch_month
        assert no_forget.pc_trust_by_month[switch + 1] > 0.5

    def test_report_renders(self, result):
        report = forgetting.format_report(result)
        assert "no forgetting" in report
        assert "factor 0.5" in report
