"""Tests for rating scales and quantization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ratings.scales import ELEVEN_LEVEL, FIVE_STAR, TEN_LEVEL, RatingScale


class TestScaleDefinition:
    def test_eleven_level_values(self):
        np.testing.assert_allclose(ELEVEN_LEVEL.values, np.arange(11) / 10.0)

    def test_ten_level_values(self):
        np.testing.assert_allclose(TEN_LEVEL.values, np.arange(1, 11) / 10.0)

    def test_five_star_values(self):
        np.testing.assert_allclose(FIVE_STAR.values, [0.2, 0.4, 0.6, 0.8, 1.0])

    def test_step(self):
        assert ELEVEN_LEVEL.step == pytest.approx(0.1)
        assert TEN_LEVEL.step == pytest.approx(0.1)

    def test_single_level_rejected(self):
        with pytest.raises(ConfigurationError):
            RatingScale(levels=1)

    def test_inverted_range_rejected(self):
        with pytest.raises(ConfigurationError):
            RatingScale(levels=5, minimum=0.9, maximum=0.1)


class TestQuantize:
    def test_rounds_to_nearest_level(self):
        assert ELEVEN_LEVEL.quantize(0.34) == pytest.approx(0.3)
        assert ELEVEN_LEVEL.quantize(0.36) == pytest.approx(0.4)

    def test_clips_below(self):
        assert ELEVEN_LEVEL.quantize(-0.7) == 0.0
        assert TEN_LEVEL.quantize(-0.7) == pytest.approx(0.1)

    def test_clips_above(self):
        assert ELEVEN_LEVEL.quantize(2.0) == 1.0

    def test_exact_levels_preserved(self):
        for level in TEN_LEVEL.values:
            assert TEN_LEVEL.quantize(float(level)) == pytest.approx(level)

    def test_quantize_array_matches_scalar(self, rng):
        raw = rng.uniform(-0.5, 1.5, size=50)
        arr = ELEVEN_LEVEL.quantize_array(raw)
        scalars = [ELEVEN_LEVEL.quantize(float(v)) for v in raw]
        np.testing.assert_allclose(arr, scalars)

    def test_output_is_always_a_level(self, rng):
        raw = rng.uniform(-1, 2, size=200)
        quantized = TEN_LEVEL.quantize_array(raw)
        levels = set(np.round(TEN_LEVEL.values, 9))
        assert set(np.round(quantized, 9)) <= levels


class TestFromStars:
    def test_five_star_mapping(self):
        assert FIVE_STAR.from_stars(1) == pytest.approx(0.2)
        assert FIVE_STAR.from_stars(3) == pytest.approx(0.6)
        assert FIVE_STAR.from_stars(5) == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            FIVE_STAR.from_stars(0)
        with pytest.raises(ConfigurationError):
            FIVE_STAR.from_stars(6)

    def test_stars_onto_different_scale(self):
        # 3 of 5 stars lands mid-scale on the 11-level scale.
        assert ELEVEN_LEVEL.from_stars(3, n_stars=5) == pytest.approx(0.5)
