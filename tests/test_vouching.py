"""Tests for the vouching network and the bridge-sweep experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import REGISTRY, vouching
from repro.simulation.vouching import (
    VouchingConfig,
    build_vouching_network,
    evaluate_network,
)


class TestConfig:
    def test_defaults_valid(self):
        VouchingConfig()

    def test_too_many_bridges_rejected(self):
        with pytest.raises(ConfigurationError):
            VouchingConfig(n_veterans=3, n_bridges=4)

    def test_empty_class_rejected(self):
        with pytest.raises(ConfigurationError):
            VouchingConfig(n_ring=0)

    def test_zero_vouches_rejected(self):
        with pytest.raises(ConfigurationError):
            VouchingConfig(vouches_per_newcomer=0)


class TestNetworkStructure:
    @pytest.fixture
    def network(self, rng):
        return build_vouching_network(VouchingConfig(n_bridges=2), rng)

    def test_class_ids_disjoint(self, network):
        classes = [set(network.veterans), set(network.newcomers), set(network.ring)]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not classes[i] & classes[j]

    def test_bridges_are_veterans(self, network):
        assert set(network.bridges) <= set(network.veterans)

    def test_counts_match_config(self, network):
        assert len(network.veterans) == 10
        assert len(network.newcomers) == 10
        assert len(network.ring) == 5
        assert len(network.bridges) == 2


class TestTrustStructure:
    def test_isolated_ring_is_inert(self, rng):
        network = build_vouching_network(VouchingConfig(n_bridges=0), rng)
        for member in network.ring:
            assert network.graph.indirect_trust(member) == 0.0

    def test_newcomers_earn_positive_trust(self, rng):
        network = build_vouching_network(VouchingConfig(), rng)
        trusts = evaluate_network(network)
        assert trusts["newcomers"] > 0.05
        assert trusts["veterans"] > trusts["newcomers"]

    def test_bridge_leaks_bounded_trust(self, rng):
        network = build_vouching_network(VouchingConfig(n_bridges=1), rng)
        trusts = evaluate_network(network)
        assert 0.0 < trusts["ring"] < trusts["newcomers"]


class TestExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return vouching.run(n_runs=10, seed=0)

    def test_registered(self):
        assert "vouching" in REGISTRY

    def test_zero_bridges_exactly_inert(self, result):
        assert result.ring_trust(0) == 0.0

    def test_one_bridge_unlocks_but_caps(self, result):
        assert result.ring_trust(1) > 0.05
        for n_bridges in result.by_bridges:
            assert (
                result.by_bridges[n_bridges]["ring"]
                < result.by_bridges[n_bridges]["newcomers"]
            )

    def test_multipath_averaging_caps_growth(self, result):
        # More bridges must not multiply the ring's trust.
        assert result.ring_trust(8) < 2.0 * result.ring_trust(1)

    def test_report_renders(self, result):
        report = vouching.format_report(result)
        assert "bridges" in report
        assert "ring" in report
