"""Tests for the named configuration presets."""

from __future__ import annotations

import numpy as np
import pytest

from repro import presets
from repro.simulation.marketplace import generate_marketplace


class TestPresets:
    def test_paper_illustrative_matches_section_3a2(self):
        config = presets.paper_illustrative()
        assert config.arrival_rate == 3.0
        assert (config.attack_start, config.attack_end) == (30.0, 44.0)
        assert config.bias_shift2 == 0.15

    def test_detection_vs_aggregation_scaling(self):
        detection = presets.paper_marketplace_detection()
        aggregation = presets.paper_marketplace_aggregation()
        assert detection.a1 == 6.0
        assert aggregation.a1 == 8.0
        assert presets.paper_marketplace_aggregation(0.2).bias_shift2 == 0.2

    def test_factories_return_fresh_objects(self):
        assert presets.paper_illustrative() is not presets.paper_illustrative()

    def test_illustrative_detector_configuration(self):
        detector = presets.illustrative_detector()
        assert detector.order == 4
        assert detector.threshold == 0.10
        assert detector.windower.size == 50

    def test_compact_marketplace_keeps_window_volume(self):
        config = presets.compact_marketplace(n_months=1)
        world = generate_marketplace(config, np.random.default_rng(0))
        # Per-product volume near the full marketplace's (~300/month),
        # so 10-day AR windows hold tens of ratings.
        counts = [len(world.store.stream(p)) for p in world.qualities]
        assert min(counts) > 100

    def test_marketplace_pipeline_default(self):
        pipeline = presets.marketplace_pipeline()
        assert pipeline.ar_window_days == 10.0
        assert pipeline.ar_window_step == 5.0
