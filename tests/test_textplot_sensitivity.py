"""Tests for terminal plots and the sensitivity-surface experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.evaluation.textplot import line_chart, sparkline
from repro.experiments import REGISTRY, sensitivity


class TestSparkline:
    def test_length_matches_series(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_monotone_series_monotone_blocks(self):
        strip = sparkline(np.linspace(0, 1, 8))
        assert strip == "▁▂▃▄▅▆▇█"

    def test_constant_series_is_flat(self):
        assert sparkline([0.5, 0.5, 0.5]) == "▁▁▁"

    def test_explicit_bounds_clip(self):
        strip = sparkline([-1.0, 0.5, 2.0], lo=0.0, hi=1.0)
        assert strip[0] == "▁"
        assert strip[-1] == "█"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestLineChart:
    def test_renders_all_series_markers(self):
        chart = line_chart({"a": [0.1, 0.9], "b": [0.9, 0.1]})
        assert "o=a" in chart
        assert "x=b" in chart
        assert "o" in chart.split("\n")[0] + chart  # markers plotted

    def test_row_count(self):
        chart = line_chart({"a": [0.0, 1.0]}, height=5)
        rows = chart.splitlines()
        # 5 chart rows + axis + legend.
        assert len(rows) == 7

    def test_extremes_land_on_edge_rows(self):
        chart = line_chart({"a": [0.0, 1.0]}, height=4, y_min=0.0, y_max=1.0)
        rows = chart.splitlines()
        assert "o" in rows[0]       # the 1.0 point on the top row
        assert "o" in rows[3]       # the 0.0 point on the bottom row

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            line_chart({"a": [1.0], "b": [1.0, 2.0]})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            line_chart({})
        with pytest.raises(ConfigurationError):
            line_chart({"a": []})

    def test_too_many_series_rejected(self):
        series = {f"s{i}": [0.0, 1.0] for i in range(9)}
        with pytest.raises(ConfigurationError):
            line_chart(series)

    def test_degenerate_range_padded(self):
        chart = line_chart({"a": [0.5, 0.5]})
        assert chart  # no division by zero


class TestSensitivitySurface:
    @pytest.fixture(scope="class")
    def result(self):
        return sensitivity.run(
            n_runs=10, seed=0, biases=(0.05, 0.15), powers=(0.25, 1.0)
        )

    def test_registered(self):
        assert "sensitivity" in REGISTRY

    def test_grid_complete(self, result):
        assert set(result.detection) == {
            (b, p) for b in result.biases for p in result.powers
        }
        assert set(result.damage) == set(result.detection)

    def test_power_drives_detection(self, result):
        for bias in result.biases:
            assert (
                result.detection[(bias, 1.0)]
                >= result.detection[(bias, 0.25)]
            )

    def test_damage_monotone_in_power(self, result):
        for bias in result.biases:
            assert result.damage[(bias, 1.0)] > result.damage[(bias, 0.25)]

    def test_threshold_calibrated_in_band(self, result):
        assert 0.05 < result.threshold < 0.25

    def test_report_renders(self, result):
        report = sensitivity.format_report(result)
        assert "detection ratio" in report
        assert "damage" in report
