"""Property-based tests for the extension modules."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.detectors.online import OnlineARDetector
from repro.evaluation.textplot import line_chart, sparkline
from repro.ratings.io import read_jsonl, write_jsonl
from repro.ratings.stream import RatingStream
from repro.reporting import to_jsonable
from repro.trust.dynamics import (
    BehaviourProfile,
    asymptotic_trust,
    detection_interval,
    expected_trust_trajectory,
)
from tests.conftest import make_rating

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
rates = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


@st.composite
def profiles(draw):
    return BehaviourProfile(
        honest_rate=draw(rates),
        unfair_rate=draw(rates),
        filter_rate=draw(unit),
        flag_rate=draw(unit),
        level=draw(unit),
        badness=draw(st.floats(min_value=0.0, max_value=3.0)),
    )


class TestDynamicsProperties:
    @given(profiles(), st.integers(min_value=1, max_value=50))
    def test_trajectory_stays_in_unit_interval(self, profile, n):
        trajectory = expected_trust_trajectory(profile, n)
        assert np.all(trajectory > 0.0)
        assert np.all(trajectory < 1.0)

    @given(profiles())
    def test_asymptote_brackets_long_run(self, profile):
        # Vanishing evidence rates converge arbitrarily slowly past the
        # Beta(1,1) prior; require a minimally active rater.
        assume(profile.success_increment + profile.failure_increment > 0.05)
        trajectory = expected_trust_trajectory(profile, 4000)
        assert trajectory[-1] == pytest.approx(
            asymptotic_trust(profile), abs=0.03
        )

    @given(profiles(), st.floats(min_value=0.1, max_value=0.9))
    def test_forgetting_asymptote_closer_to_prior(self, profile, factor):
        free = asymptotic_trust(profile, 1.0)
        damped = asymptotic_trust(profile, factor)
        assert abs(damped - 0.5) <= abs(free - 0.5) + 1e-9

    @given(profiles())
    def test_detection_interval_consistent_with_trajectory(self, profile):
        interval = detection_interval(profile, max_intervals=200)
        trajectory = expected_trust_trajectory(profile, 200)
        if interval is None:
            assert np.all(trajectory >= 0.5)
        else:
            assert trajectory[interval - 1] < 0.5
            assert np.all(trajectory[: interval - 1] >= 0.5)


class TestOnlineDetectorProperties:
    @given(
        arrays(dtype=float, shape=st.integers(1, 120), elements=unit),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_verdict_count_matches_stride_schedule(self, values, stride):
        detector = OnlineARDetector(window_size=20, stride=stride, threshold=0.1)
        ratings = [
            make_rating(i, float(np.round(v, 2)), float(i))
            for i, v in enumerate(values)
        ]
        emitted = detector.observe_many(ratings)
        n = len(values)
        expected = 0 if n < 20 else 1 + (n - 20) // stride
        # Evaluations can be skipped only on fit failure, never added.
        assert len(emitted) <= expected
        assert len(detector.verdicts) == len(emitted)

    @given(arrays(dtype=float, shape=st.integers(25, 60), elements=unit))
    @settings(max_examples=40, deadline=None)
    def test_statistics_bounded(self, values):
        detector = OnlineARDetector(window_size=20, stride=3, threshold=0.1)
        ratings = [
            make_rating(i, float(np.round(v, 2)), float(i))
            for i, v in enumerate(values)
        ]
        detector.observe_many(ratings)
        for verdict in detector.verdicts:
            assert 0.0 <= verdict.statistic <= 1.0


class TestTextplotProperties:
    @given(arrays(dtype=float, shape=st.integers(1, 60), elements=unit))
    def test_sparkline_length_and_charset(self, values):
        strip = sparkline(values)
        assert len(strip) == len(values)
        assert set(strip) <= set("▁▂▃▄▅▆▇█")

    @given(
        arrays(dtype=float, shape=st.integers(1, 40), elements=unit),
        st.integers(min_value=2, max_value=12),
    )
    def test_line_chart_row_count(self, values, height):
        chart = line_chart({"s": values}, height=height)
        assert len(chart.splitlines()) == height + 2


class TestIoProperties:
    @given(
        rows=st.lists(
            st.tuples(unit, st.floats(min_value=0.0, max_value=1e6), st.booleans()),
            min_size=0,
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_jsonl_round_trip(self, rows, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "trace.jsonl"
        ratings = [
            make_rating(i, float(np.round(v, 6)), float(t), unfair=u)
            for i, (v, t, u) in enumerate(rows)
        ]
        stream = RatingStream.from_ratings(ratings)
        write_jsonl(stream, path)
        loaded = read_jsonl(path)
        assert len(loaded) == len(stream)
        for a, b in zip(stream, loaded):
            assert a.value == pytest.approx(b.value)
            assert a.unfair == b.unfair


class TestReportingProperties:
    @given(
        st.recursive(
            st.one_of(st.none(), st.booleans(), st.integers(), unit, st.text(max_size=10)),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=5), children, max_size=4),
            ),
            max_leaves=20,
        )
    )
    def test_to_jsonable_always_serializable(self, obj):
        import json

        json.dumps(to_jsonable(obj))
