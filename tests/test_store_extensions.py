"""Tests for the RatingStore container protocol and recycling."""

from __future__ import annotations

import pytest

from repro.errors import UnknownProductError
from repro.ratings.models import Product, RaterClass, RaterProfile
from repro.ratings.store import RatingStore
from tests.conftest import make_rating


@pytest.fixture()
def store():
    s = RatingStore()
    s.add_product(Product(product_id=1, quality=0.7))
    s.add_product(Product(product_id=2, quality=0.4))
    s.add_rater(RaterProfile(rater_id=10, rater_class=RaterClass.RELIABLE))
    s.add_rater(RaterProfile(rater_id=11, rater_class=RaterClass.CARELESS))
    s.add_ratings(
        [
            make_rating(0, 0.7, 0.0, rater_id=10, product_id=1),
            make_rating(1, 0.6, 1.0, rater_id=11, product_id=1),
            make_rating(2, 0.4, 2.0, rater_id=10, product_id=2),
        ]
    )
    return s


class TestContainerProtocol:
    def test_len_counts_ratings(self, store):
        assert len(store) == 3
        assert len(store) == store.n_ratings

    def test_contains_is_product_membership(self, store):
        assert 1 in store
        assert 2 in store
        assert 99 not in store
        # Rater ids are a different namespace.
        assert 10 not in store

    def test_has_product_has_rater(self, store):
        assert store.has_product(1) and not store.has_product(99)
        assert store.has_rater(10) and not store.has_rater(1)

    def test_empty_store(self):
        store = RatingStore()
        assert len(store) == 0
        assert 1 not in store


class TestClear:
    def test_clear_drops_ratings_keeps_registrations(self, store):
        store.clear()
        assert len(store) == 0
        assert 1 in store and 2 in store
        assert store.has_rater(10) and store.has_rater(11)
        assert len(store.stream(1)) == 0
        assert len(store.rater_stream(10)) == 0

    def test_store_is_reusable_after_clear(self, store):
        store.clear()
        store.add_rating(make_rating(5, 0.9, 0.0, rater_id=10, product_id=1))
        assert len(store) == 1
        assert [r.rating_id for r in store.stream(1)] == [5]

    def test_clear_does_not_touch_lookup_errors(self, store):
        store.clear()
        with pytest.raises(UnknownProductError):
            store.stream(99)
