"""Tests for structured result export."""

from __future__ import annotations

import dataclasses
import enum
import json

import numpy as np
import pytest

from repro.ratings.models import RaterClass
from repro.reporting import dump_json, to_jsonable


@dataclasses.dataclass(frozen=True)
class Inner:
    values: np.ndarray
    label: RaterClass


@dataclasses.dataclass(frozen=True)
class Outer:
    inner: Inner
    table: dict
    opaque: object


class TestToJsonable:
    def test_primitives_pass_through(self):
        assert to_jsonable(5) == 5
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None
        assert to_jsonable(True) is True

    def test_numpy_scalars_and_arrays(self):
        assert to_jsonable(np.int64(3)) == 3
        assert to_jsonable(np.float64(0.5)) == 0.5
        assert to_jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_huge_array_summarized(self):
        big = np.zeros(200_001)
        out = to_jsonable(big)
        assert out["__array_summary__"] is True
        assert out["shape"] == [200_001]

    def test_enum_becomes_value(self):
        assert to_jsonable(RaterClass.CARELESS) == "careless"

    def test_nested_dataclasses(self):
        outer = Outer(
            inner=Inner(values=np.array([0.1]), label=RaterClass.RELIABLE),
            table={1: 0.5, RaterClass.CARELESS: 0.4},
            opaque=object(),
        )
        out = to_jsonable(outer)
        assert out["inner"]["values"] == [0.1]
        assert out["inner"]["label"] == "reliable"
        assert out["table"]["1"] == 0.5
        assert isinstance(out["opaque"], str)

    def test_sets_become_lists(self):
        assert sorted(to_jsonable({2, 1})) == [1, 2]

    def test_depth_cap_prevents_runaway(self):
        nested = [0]
        for _ in range(30):
            nested = [nested]
        out = to_jsonable(nested)
        assert out is not None  # degraded to repr somewhere, no crash

    def test_result_is_json_serializable(self):
        outer = Outer(
            inner=Inner(values=np.arange(3.0), label=RaterClass.RELIABLE),
            table={"a": np.float32(1.5)},
            opaque=lambda: None,
        )
        json.dumps(to_jsonable(outer))


class TestDumpJson:
    def test_round_trip(self, tmp_path):
        path = dump_json({"x": np.array([1.0])}, tmp_path / "out.json")
        loaded = json.loads(path.read_text())
        assert loaded == {"x": [1.0]}

    def test_experiment_result_dumps(self, tmp_path):
        from repro.experiments import table1

        result = table1.run(n_runs=5, seed=0)
        path = dump_json(result, tmp_path / "table1.json")
        loaded = json.loads(path.read_text())
        assert "aggregates" in loaded
        assert loaded["n_runs"] == 5


class TestCliJson:
    def test_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "result.json"
        assert main(["run", "table1", "--runs", "5", "--json", str(out)]) == 0
        loaded = json.loads(out.read_text())
        assert loaded["n_runs"] == 5
