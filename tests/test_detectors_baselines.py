"""Tests for the baseline suspicion detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.clustering import ClusteringDetector, two_means_1d
from repro.detectors.endorsement import EndorsementDetector, endorsement_quality
from repro.detectors.entropy import EntropyChangeDetector
from repro.errors import ConfigurationError
from repro.ratings.scales import ELEVEN_LEVEL
from repro.ratings.stream import RatingStream
from repro.signal.windows import CountWindower
from tests.conftest import make_stream


class TestTwoMeans:
    def test_separates_two_clusters(self):
        values = np.array([0.1, 0.12, 0.08, 0.9, 0.92, 0.88])
        labels, low, high = two_means_1d(values)
        assert labels.tolist() == [0, 0, 0, 1, 1, 1]
        assert low == pytest.approx(0.1)
        assert high == pytest.approx(0.9)

    def test_identical_values(self):
        labels, low, high = two_means_1d(np.full(5, 0.5))
        assert not labels.any()
        assert low == high == 0.5

    def test_too_few_samples(self):
        with pytest.raises(ConfigurationError):
            two_means_1d(np.array([0.5]))


class TestClusteringDetector:
    def test_flags_separated_minority(self, rng):
        majority = list(np.clip(rng.normal(0.3, 0.05, size=40), 0, 1))
        minority = list(np.clip(rng.normal(0.9, 0.02, size=10), 0, 1))
        stream = make_stream(majority + minority, spacing=0.1)
        detector = ClusteringDetector(
            min_separation=0.5, windower=CountWindower(size=50)
        )
        report = detector.detect(stream)
        assert report.suspicious_verdicts
        # Flagged ratings are the minority cluster.
        flagged = report.flagged_rating_ids
        assert flagged <= set(range(40, 50))

    def test_moderate_bias_evades(self, rng):
        majority = list(np.clip(rng.normal(0.5, 0.2, size=40), 0, 1))
        colluders = list(np.clip(rng.normal(0.62, 0.05, size=10), 0, 1))
        stream = make_stream(majority + colluders, spacing=0.1)
        detector = ClusteringDetector(
            min_separation=0.5, windower=CountWindower(size=50)
        )
        report = detector.detect(stream)
        assert len(report.flagged_rating_ids) <= 3

    def test_empty_stream(self):
        assert ClusteringDetector().detect(RatingStream()).verdicts == []

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ClusteringDetector(min_separation=0.0)
        with pytest.raises(ConfigurationError):
            ClusteringDetector(max_minority_fraction=1.0)


class TestEndorsementQuality:
    def test_consensus_scores_high(self):
        quality = endorsement_quality(np.full(10, 0.7))
        np.testing.assert_allclose(quality, 1.0)

    def test_outlier_scores_lowest(self):
        values = np.array([0.7, 0.7, 0.7, 0.7, 0.1])
        quality = endorsement_quality(values)
        assert np.argmin(quality) == 4

    def test_needs_two_ratings(self):
        with pytest.raises(ConfigurationError):
            endorsement_quality(np.array([0.5]))

    def test_symmetric(self):
        values = np.array([0.2, 0.8])
        quality = endorsement_quality(values)
        assert quality[0] == pytest.approx(quality[1])


class TestEndorsementDetector:
    def test_flags_low_quality_ratings(self, rng):
        values = [0.7] * 30 + [0.05]
        stream = make_stream(values, spacing=0.1)
        detector = EndorsementDetector(
            quality_threshold=0.6, windower=CountWindower(size=31)
        )
        report = detector.detect(stream)
        assert report.flagged_rating_ids == {30}

    def test_colluders_endorse_each_other(self, rng):
        # Near-majority colluders keep high endorsement -> no flags.
        honest = list(np.clip(rng.normal(0.5, 0.15, size=35), 0, 1))
        colluders = [0.65] * 15
        stream = make_stream(honest + colluders, spacing=0.1)
        detector = EndorsementDetector(
            quality_threshold=0.6, windower=CountWindower(size=50)
        )
        report = detector.detect(stream)
        assert not (report.flagged_rating_ids & set(range(35, 50)))

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            EndorsementDetector(quality_threshold=1.0)


class TestEntropyDetector:
    def test_flags_entropy_shifts_on_fresh_histogram(self):
        # The very first ratings shift the (prior-only) histogram the
        # most; later consensus ratings shift it little.
        stream = make_stream([0.5] * 50, spacing=0.1)
        detector = EntropyChangeDetector(scale=ELEVEN_LEVEL, threshold=0.05)
        report = detector.detect(stream)
        changes = [v.statistic for v in report.verdicts]
        assert changes[0] > changes[-1]

    def test_stable_distribution_not_flagged(self, rng):
        values = ELEVEN_LEVEL.quantize_array(rng.uniform(0, 1, size=300))
        stream = make_stream(values, spacing=0.1)
        detector = EntropyChangeDetector(scale=ELEVEN_LEVEL, threshold=0.2)
        report = detector.detect(stream)
        late_flags = [
            v for v in report.suspicious_verdicts if v.window.index > 50
        ]
        assert not late_flags

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            EntropyChangeDetector(scale=ELEVEN_LEVEL, threshold=0.0)
        with pytest.raises(ConfigurationError):
            EntropyChangeDetector(scale=ELEVEN_LEVEL, prior=0.0)

    def test_verdict_count_matches_stream(self):
        stream = make_stream([0.3, 0.5, 0.7])
        report = EntropyChangeDetector(scale=ELEVEN_LEVEL).detect(stream)
        assert len(report.verdicts) == 3
