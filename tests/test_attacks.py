"""Tests for collusion strategies, campaigns, and trace injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.campaign import CollusionCampaign
from repro.attacks.injection import estimate_trace_statistics, inject_campaign
from repro.attacks.strategies import LARGE_BIAS, MODERATE_BIAS, required_colluders
from repro.errors import ConfigurationError, EmptyWindowError
from repro.ratings.scales import ELEVEN_LEVEL
from repro.ratings.stream import RatingStream
from tests.conftest import make_rating, make_stream


class TestRequiredColluders:
    def test_paper_example_strategy_one(self):
        # Paper eq. (1): quality 3/5 = 0.6, target 3.5/5 = 0.7, rating 1.0
        # (the "5" level): M > N/3.
        m = required_colluders(n_honest=30, quality=0.6, target=0.7, collusion_value=1.0)
        assert m == pytest.approx(10.0)

    def test_paper_example_strategy_two(self):
        # Moderate rating 4/5 = 0.8: M > N.
        m = required_colluders(n_honest=30, quality=0.6, target=0.7, collusion_value=0.8)
        assert m == pytest.approx(30.0)

    def test_unreachable_target(self):
        assert required_colluders(10, 0.6, 0.9, 0.8) == float("inf")

    def test_moderate_bias_needs_more_colluders(self):
        extreme = required_colluders(100, 0.6, 0.7, 1.0)
        moderate = required_colluders(100, 0.6, 0.7, 0.75)
        assert moderate > extreme

    def test_negative_population_rejected(self):
        with pytest.raises(ConfigurationError):
            required_colluders(-1, 0.5, 0.6, 1.0)

    def test_strategy_presets(self):
        assert LARGE_BIAS.detectable_by_filters
        assert not MODERATE_BIAS.detectable_by_filters
        assert MODERATE_BIAS.bias_shift < LARGE_BIAS.bias_shift


class TestCampaignValidation:
    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            CollusionCampaign(start=10.0, end=10.0)

    def test_type1_power_is_fraction(self):
        with pytest.raises(ConfigurationError):
            CollusionCampaign(start=0.0, end=1.0, type1_power=1.5)

    def test_covers(self):
        campaign = CollusionCampaign(start=10.0, end=20.0)
        assert campaign.covers(10.0)
        assert campaign.covers(19.99)
        assert not campaign.covers(20.0)
        assert not campaign.covers(9.99)


class TestInfluence:
    def make_campaign(self, power=1.0):
        return CollusionCampaign(
            start=0.0, end=10.0, type1_bias=0.2, type1_power=power
        )

    def test_all_in_window_shifted_at_full_power(self, rng):
        stream = make_stream([0.5] * 5)  # times 0..4, inside window
        influenced = self.make_campaign().influence(stream, ELEVEN_LEVEL, rng)
        np.testing.assert_allclose(influenced.values, 0.7)
        assert influenced.unfair_flags.all()

    def test_outside_window_untouched(self, rng):
        stream = RatingStream.from_ratings(
            [make_rating(0, 0.5, time=50.0)]
        )
        influenced = self.make_campaign().influence(stream, ELEVEN_LEVEL, rng)
        assert influenced[0].value == 0.5
        assert not influenced[0].unfair

    def test_zero_power_is_identity(self, rng):
        stream = make_stream([0.5] * 3)
        campaign = self.make_campaign(power=0.0)
        assert campaign.influence(stream, ELEVEN_LEVEL, rng) is stream

    def test_partial_power_shifts_roughly_that_fraction(self, rng):
        stream = make_stream([0.5] * 400, spacing=0.01)
        campaign = self.make_campaign(power=0.3)
        influenced = campaign.influence(stream, ELEVEN_LEVEL, rng)
        shifted = influenced.unfair_flags.mean()
        assert shifted == pytest.approx(0.3, abs=0.08)

    def test_original_ids_preserved(self, rng):
        stream = make_stream([0.5] * 5)
        influenced = self.make_campaign().influence(stream, ELEVEN_LEVEL, rng)
        assert [r.rating_id for r in influenced] == [r.rating_id for r in stream]


class TestRecruit:
    def test_recruited_ratings_inside_window(self, rng):
        campaign = CollusionCampaign(
            start=10.0, end=20.0, type2_bias=0.15, type2_variance=0.01, type2_power=1.0
        )
        ratings = campaign.recruit(
            product_id=0,
            quality_at=lambda t: 0.6,
            base_rate=5.0,
            scale=ELEVEN_LEVEL,
            rng=rng,
            rater_id_start=1000,
        )
        assert all(10.0 <= r.time < 20.0 for r in ratings)
        assert all(r.unfair for r in ratings)
        assert all(r.rater_id >= 1000 for r in ratings)
        values = np.array([r.value for r in ratings])
        assert np.mean(values) == pytest.approx(0.75, abs=0.05)

    def test_fresh_rater_per_rating(self, rng):
        campaign = CollusionCampaign(
            start=0.0, end=50.0, type2_bias=0.1, type2_power=1.0
        )
        ratings = campaign.recruit(0, lambda t: 0.5, 3.0, ELEVEN_LEVEL, rng, 10)
        rater_ids = [r.rater_id for r in ratings]
        assert len(set(rater_ids)) == len(rater_ids)

    def test_zero_power_recruits_nobody(self, rng):
        campaign = CollusionCampaign(start=0.0, end=10.0, type2_power=0.0)
        assert campaign.recruit(0, lambda t: 0.5, 5.0, ELEVEN_LEVEL, rng, 0) == []


class TestInjection:
    def make_trace(self, rng, n=300):
        times = np.sort(rng.uniform(0, 100, size=n))
        ratings = [
            make_rating(i, float(ELEVEN_LEVEL.quantize(rng.normal(0.6, 0.2))), float(t))
            for i, t in enumerate(times)
        ]
        return RatingStream.from_ratings(ratings)

    def test_statistics(self, rng):
        trace = self.make_trace(rng)
        stats = estimate_trace_statistics(trace)
        assert stats.mean == pytest.approx(0.6, abs=0.05)
        assert stats.arrival_rate == pytest.approx(3.0, rel=0.2)

    def test_statistics_need_two_ratings(self):
        with pytest.raises(EmptyWindowError):
            estimate_trace_statistics(make_stream([0.5]))

    def test_injection_adds_unfair_ratings(self, rng):
        trace = self.make_trace(rng)
        campaign = CollusionCampaign(
            start=30.0, end=60.0, type1_bias=0.2, type1_power=0.5,
            type2_bias=0.25, type2_variance=0.01, type2_power=1.0,
        )
        attacked = inject_campaign(trace, campaign, ELEVEN_LEVEL, rng)
        assert len(attacked) > len(trace)
        unfair = attacked.unfair_only()
        assert len(unfair) > 0
        assert all(30.0 <= r.time < 60.0 for r in unfair)

    def test_injection_preserves_original_outside_window(self, rng):
        trace = self.make_trace(rng)
        campaign = CollusionCampaign(start=30.0, end=60.0, type2_bias=0.2, type2_power=0.5)
        attacked = inject_campaign(trace, campaign, ELEVEN_LEVEL, rng)
        before = trace.between(0.0, 30.0)
        after = attacked.between(0.0, 30.0)
        assert [r.rating_id for r in before] == [r.rating_id for r in after]

    def test_recruited_ids_above_trace_ids(self, rng):
        trace = self.make_trace(rng)
        campaign = CollusionCampaign(start=30.0, end=60.0, type2_bias=0.2, type2_power=1.0)
        attacked = inject_campaign(trace, campaign, ELEVEN_LEVEL, rng)
        max_original = int(trace.rater_ids.max())
        recruited = attacked.unfair_only()
        assert all(r.rater_id > max_original for r in recruited)

    def test_attack_outside_span_rejected(self, rng):
        trace = self.make_trace(rng)
        campaign = CollusionCampaign(start=500.0, end=600.0, type2_power=1.0)
        with pytest.raises(ConfigurationError):
            inject_campaign(trace, campaign, ELEVEN_LEVEL, rng)

    def test_empty_trace_rejected(self, rng):
        campaign = CollusionCampaign(start=0.0, end=1.0, type2_power=1.0)
        with pytest.raises(EmptyWindowError):
            inject_campaign(RatingStream(), campaign, ELEVEN_LEVEL, rng)
