"""Tests for the marketplace pipeline runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.methods import ModifiedWeightedAverage, SimpleAverage
from repro.ratings.models import RaterClass
from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace
from repro.simulation.pipeline import PipelineConfig, run_marketplace


# The AR detector needs tens of ratings per 10-day window (the paper
# uses 50-rating windows), so the scaled-down world keeps the rating
# volume per product near the full marketplace's by raising p_rate.
CONFIG = MarketplaceConfig(
    n_reliable=120, n_careless=60, n_pc=60, n_months=3, p_rate=0.04
)


@pytest.fixture(scope="module")
def run_result():
    world = generate_marketplace(CONFIG, np.random.default_rng(11))
    return run_marketplace(world, PipelineConfig())


class TestPipelineRun:
    def test_one_trust_snapshot_per_month(self, run_result):
        assert len(run_result.monthly_trust) == 3
        assert len(run_result.monthly_reports) == 3

    def test_all_raters_tracked(self, run_result):
        assert len(run_result.monthly_trust[-1]) == CONFIG.n_raters

    def test_mean_trust_series_cover_all_classes(self, run_result):
        series = run_result.mean_trust_by_class()
        assert set(series) == {
            RaterClass.RELIABLE,
            RaterClass.CARELESS,
            RaterClass.POTENTIAL_COLLABORATIVE,
        }
        for values in series.values():
            assert values.shape == (3,)

    def test_trust_separates_classes(self, run_result):
        series = run_result.mean_trust_by_class()
        final_honest = series[RaterClass.RELIABLE][-1]
        final_pc = series[RaterClass.POTENTIAL_COLLABORATIVE][-1]
        assert final_honest > 0.7
        assert final_pc < final_honest - 0.2

    def test_rater_detection_improves_or_holds(self, run_result):
        d1 = run_result.rater_detection_at(0)
        d3 = run_result.rater_detection_at(2)
        assert d3.detection_rate >= d1.detection_rate - 0.2
        assert d3.detection_rate > 0.3

    def test_false_alarms_low(self, run_result):
        stats = run_result.rater_detection_at(2)
        for rate in stats.false_alarm_rates.values():
            assert rate <= 0.1

    def test_rating_detection_rows(self, run_result):
        rows = run_result.rating_detection_by_month()
        assert len(rows) == 3
        for row in rows:
            assert 0.0 <= row["detection_ratio"] <= 1.0
            assert 0.0 <= row["false_alarm_ratio"] <= 1.0
        assert rows[-1]["false_alarm_ratio"] < 0.1

    def test_aggregation_table(self, run_result):
        table = run_result.aggregation_table(
            {"simple": SimpleAverage(), "mwa": ModifiedWeightedAverage()}
        )
        assert set(table) == {"simple", "mwa"}
        world = run_result.world
        for scheme in table.values():
            assert set(scheme) == set(world.qualities)

    def test_proposed_scheme_resists_collusion(self, run_result):
        world = run_result.world
        simple = run_result.aggregate_products(SimpleAverage())
        mwa = run_result.aggregate_products(ModifiedWeightedAverage())
        dishonest = world.dishonest_product_ids
        simple_dev = np.mean(
            [simple[p] - world.qualities[p] for p in dishonest]
        )
        mwa_dev = np.mean([mwa[p] - world.qualities[p] for p in dishonest])
        assert abs(mwa_dev) < abs(simple_dev) + 0.02

    def test_trust_snapshot_is_a_copy(self, run_result):
        snapshot = run_result.trust_snapshot(0)
        snapshot[0] = -1.0
        assert run_result.monthly_trust[0][0] != -1.0
