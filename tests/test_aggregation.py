"""Tests for the four rating-aggregation methods."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.methods import (
    PAPER_METHODS,
    BetaFunctionAggregator,
    ModifiedWeightedAverage,
    PlainWeightedAverage,
    SimpleAverage,
    SunTrustModelAggregator,
)
from repro.errors import ConfigurationError, EmptyWindowError


HONEST = [0.8, 0.82, 0.78, 0.8]
HONEST_TRUST = [0.95, 0.9, 0.92, 0.94]


class TestSimpleAverage:
    def test_mean(self):
        assert SimpleAverage().aggregate([0.2, 0.4], [1.0, 1.0]) == pytest.approx(0.3)

    def test_trust_ignored(self):
        agg = SimpleAverage()
        assert agg.aggregate([0.2, 0.4], [0.0, 0.0]) == agg.aggregate(
            [0.2, 0.4], [1.0, 1.0]
        )

    def test_empty_rejected(self):
        with pytest.raises(EmptyWindowError):
            SimpleAverage().aggregate([], [])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SimpleAverage().aggregate([0.5], [0.5, 0.5])


class TestBetaFunction:
    def test_matches_formula(self):
        # S' = 1.2, F' = 0.8 -> (1.2 + 1) / (2 + 2).
        assert BetaFunctionAggregator().aggregate(
            [0.8, 0.4], [1.0, 1.0]
        ) == pytest.approx(2.2 / 4.0)

    def test_prior_pulls_toward_half(self):
        result = BetaFunctionAggregator().aggregate([1.0], [1.0])
        assert 0.5 < result < 1.0

    def test_converges_to_mean_with_many_ratings(self):
        values = [0.8] * 1000
        result = BetaFunctionAggregator().aggregate(values, [1.0] * 1000)
        assert result == pytest.approx(0.8, abs=0.01)


class TestModifiedWeightedAverage:
    def test_low_trust_excluded(self):
        # Collaborative rater with trust 0.4 contributes nothing.
        result = ModifiedWeightedAverage().aggregate([0.8, 0.1], [0.9, 0.4])
        assert result == pytest.approx(0.8)

    def test_trust_exactly_at_floor_excluded(self):
        result = ModifiedWeightedAverage().aggregate([0.8, 0.1], [0.9, 0.5])
        assert result == pytest.approx(0.8)

    def test_weights_grow_above_floor(self):
        # Trust 0.9 weighs 4x trust 0.6.
        result = ModifiedWeightedAverage().aggregate([1.0, 0.0], [0.9, 0.6])
        assert result == pytest.approx(0.8)

    def test_all_below_floor_falls_back_to_mean(self):
        result = ModifiedWeightedAverage().aggregate([0.2, 0.6], [0.3, 0.4])
        assert result == pytest.approx(0.4)

    def test_custom_floor(self):
        agg = ModifiedWeightedAverage(floor=0.0)
        assert agg.aggregate([1.0, 0.0], [0.75, 0.25]) == pytest.approx(0.75)

    def test_invalid_floor_rejected(self):
        with pytest.raises(ConfigurationError):
            ModifiedWeightedAverage(floor=1.0)

    def test_resists_collusion_better_than_simple(self):
        values = HONEST + [0.4, 0.42, 0.38, 0.4]
        trusts = HONEST_TRUST + [0.45, 0.4, 0.42, 0.48]
        mwa = ModifiedWeightedAverage().aggregate(values, trusts)
        simple = SimpleAverage().aggregate(values, trusts)
        assert abs(mwa - 0.8) < abs(simple - 0.8)


class TestPlainWeightedAverage:
    def test_weights_by_raw_trust(self):
        result = PlainWeightedAverage().aggregate([1.0, 0.0], [0.8, 0.2])
        assert result == pytest.approx(0.8)

    def test_zero_trust_falls_back_to_mean(self):
        assert PlainWeightedAverage().aggregate([0.2, 0.8], [0.0, 0.0]) == 0.5

    def test_keeps_low_trust_influence(self):
        values = [0.8, 0.2]
        trusts = [0.9, 0.45]
        plain = PlainWeightedAverage().aggregate(values, trusts)
        gated = ModifiedWeightedAverage().aggregate(values, trusts)
        assert plain < gated  # the colluder still drags the plain average


class TestSunTrustModel:
    def test_full_trust_passes_rating_through(self):
        assert SunTrustModelAggregator().aggregate([0.8], [1.0]) == pytest.approx(0.8)

    def test_zero_trust_inverts(self):
        assert SunTrustModelAggregator().aggregate([0.8], [0.0]) == pytest.approx(0.2)

    def test_neutral_trust_pulls_to_half(self):
        # T = 0.5 mixes the rating and its inversion equally.
        assert SunTrustModelAggregator().aggregate([0.9], [0.5]) == pytest.approx(0.5)

    def test_trusts_clipped(self):
        result = SunTrustModelAggregator().aggregate([0.8], [1.4])
        assert result == pytest.approx(0.8)

    def test_underperforms_mwa_in_paper_scenario(self, rng):
        values = np.concatenate((rng.normal(0.8, 0.22, 10), rng.normal(0.4, 0.14, 10)))
        trusts = np.concatenate((rng.normal(0.95, 0.22, 10), rng.normal(0.6, 0.31, 10)))
        values, trusts = np.clip(values, 0, 1), np.clip(trusts, 0, 1)
        sun = SunTrustModelAggregator().aggregate(values, trusts)
        mwa = ModifiedWeightedAverage().aggregate(values, trusts)
        assert abs(mwa - 0.8) < abs(sun - 0.8)


class TestRegistry:
    def test_four_methods(self):
        assert sorted(PAPER_METHODS) == [1, 2, 3, 4]

    def test_instances_are_callable(self):
        for cls in PAPER_METHODS.values():
            agg = cls()
            assert 0.0 <= agg([0.5, 0.7], [0.8, 0.8]) <= 1.0

    def test_names_unique(self):
        names = {cls().name for cls in PAPER_METHODS.values()}
        assert len(names) == 4
