"""Tests for the AR estimators (covariance, Yule-Walker, Burg)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InsufficientDataError, SignalModelError
from repro.signal.ar import AR_METHODS, arburg, arcov, aryule, normalized_model_error


def ar2_signal(rng, n=500, a1=-1.5, a2=0.7, std=0.1):
    """A stable AR(2) process driven by white noise."""
    x = np.zeros(n + 100)
    noise = rng.normal(0.0, std, size=n + 100)
    for t in range(2, n + 100):
        x[t] = -a1 * x[t - 1] - a2 * x[t - 2] + noise[t]
    return x[100:]


class TestArcov:
    def test_recovers_ar2_coefficients(self, rng):
        x = ar2_signal(rng)
        model = arcov(x, order=2)
        assert model.coefficients[0] == 1.0
        assert model.coefficients[1] == pytest.approx(-1.5, abs=0.05)
        assert model.coefficients[2] == pytest.approx(0.7, abs=0.05)

    def test_normalized_error_in_unit_interval(self, rng):
        x = rng.normal(0.5, 0.2, size=100)
        model = arcov(x, order=4)
        assert 0.0 <= model.normalized_error <= 1.0

    def test_constant_signal_is_perfectly_predictable(self):
        x = np.full(50, 0.7)
        model = arcov(x, order=3)
        assert model.normalized_error == pytest.approx(0.0, abs=1e-9)

    def test_white_noise_with_dc_has_small_error(self, rng):
        # DC level dominates the energy, so the normalized error is the
        # noise-to-total-energy ratio.
        x = 0.8 + rng.normal(0.0, 0.1, size=400)
        model = arcov(x, order=4)
        expected = 0.01 / (0.64 + 0.01)
        assert model.normalized_error == pytest.approx(expected, rel=0.5)

    def test_residuals_match_error_energy(self, rng):
        x = rng.normal(0.5, 0.2, size=80)
        model = arcov(x, order=3)
        assert np.dot(model.residuals, model.residuals) == pytest.approx(
            model.error_energy
        )

    def test_residual_count(self, rng):
        x = rng.normal(0.0, 1.0, size=60)
        model = arcov(x, order=5)
        assert model.residuals.size == 60 - 5

    def test_too_few_samples_raises(self):
        with pytest.raises(InsufficientDataError):
            arcov(np.ones(8), order=4)

    def test_nan_raises(self):
        x = np.ones(50)
        x[10] = np.nan
        with pytest.raises(SignalModelError):
            arcov(x, order=2)

    def test_order_zero_rejected(self):
        with pytest.raises(SignalModelError):
            arcov(np.arange(50.0), order=0)

    def test_covariance_beats_zeroth_order(self, rng):
        # The LS fit can never have more residual energy than the
        # trivial zero predictor over the same support.
        x = rng.normal(0.3, 0.25, size=120)
        model = arcov(x, order=4)
        assert model.error_energy <= model.signal_energy + 1e-9

    def test_predict_matches_residuals_on_fit_window(self, rng):
        x = rng.normal(0.5, 0.2, size=60)
        model = arcov(x, order=3)
        predictions = model.predict(x)
        np.testing.assert_allclose(x[3:] - predictions, model.residuals, atol=1e-9)

    def test_predict_needs_enough_samples(self, rng):
        model = arcov(rng.normal(size=40), order=4)
        with pytest.raises(InsufficientDataError):
            model.predict(np.ones(4))


class TestAryule:
    def test_recovers_ar2_coefficients(self, rng):
        x = ar2_signal(rng, n=3000)
        model = aryule(x, order=2)
        assert model.coefficients[1] == pytest.approx(-1.5, abs=0.05)
        assert model.coefficients[2] == pytest.approx(0.7, abs=0.05)

    def test_constant_signal_handled(self):
        # The biased autocorrelation estimator tapers the edges, so the
        # Yule-Walker fit of a constant is near-perfect, not exact.
        model = aryule(np.full(40, 0.3), order=2)
        assert model.normalized_error < 0.01

    def test_zero_signal_handled(self):
        model = aryule(np.zeros(40), order=2)
        assert model.normalized_error == 0.0

    def test_method_label(self, rng):
        model = aryule(rng.normal(size=50), order=2)
        assert model.method == "autocorrelation"


class TestArburg:
    def test_recovers_ar2_coefficients(self, rng):
        x = ar2_signal(rng, n=2000)
        model = arburg(x, order=2)
        assert model.coefficients[1] == pytest.approx(-1.5, abs=0.05)
        assert model.coefficients[2] == pytest.approx(0.7, abs=0.05)

    def test_constant_signal_short_circuits(self):
        model = arburg(np.full(30, 0.9), order=3)
        assert model.normalized_error == pytest.approx(0.0, abs=1e-9)

    def test_reflection_magnitudes_stable(self, rng):
        # Burg's method guarantees a stable model: all poles inside the
        # unit circle.
        x = rng.normal(0.0, 1.0, size=200)
        model = arburg(x, order=6)
        roots = np.roots(model.coefficients)
        assert np.all(np.abs(roots) < 1.0 + 1e-8)


class TestCrossMethod:
    @pytest.mark.parametrize("method", sorted(AR_METHODS))
    def test_all_methods_agree_on_strong_ar1(self, method, rng):
        x = ar2_signal(rng, n=2000, a1=-0.9, a2=0.0)
        model = AR_METHODS[method](x, order=1)
        assert model.coefficients[1] == pytest.approx(-0.9, abs=0.05)

    @pytest.mark.parametrize("method", sorted(AR_METHODS))
    def test_error_energy_nonnegative(self, method, rng):
        model = AR_METHODS[method](rng.normal(size=100), order=4)
        assert model.error_energy >= 0.0
        assert model.signal_energy >= 0.0

    def test_collusion_window_has_lower_error_than_honest(self, rng):
        # The core detection premise on raw arrays: a window whose
        # second half is a tight biased cluster models better than
        # plain honest noise.
        honest = np.clip(rng.normal(0.7, 0.45, size=50), 0, 1)
        attacked = honest.copy()
        attacked[25:] = np.clip(rng.normal(0.85, 0.14, size=25), 0, 1)
        e_honest = arcov(honest, 4).normalized_error
        e_attacked = arcov(attacked, 4).normalized_error
        assert e_attacked < e_honest


class TestNormalizedModelError:
    def test_zero_energy_means_perfectly_predictable(self):
        assert normalized_model_error(0.0, 0.0) == 0.0

    def test_clipping_to_one(self):
        assert normalized_model_error(5.0, 1.0) == 1.0

    def test_ratio(self):
        assert normalized_model_error(0.2, 0.8) == pytest.approx(0.25)
