"""Tests for individual unfair raters and their damage experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import REGISTRY, individual_unfair
from repro.raters.individual import DispositionalRater, RandomRater
from repro.ratings.models import RaterClass
from repro.ratings.scales import ELEVEN_LEVEL


class TestDispositionalRater:
    def test_bias_applied(self, rng):
        rater = DispositionalRater(0, ELEVEN_LEVEL, variance=0.0, disposition=0.2)
        assert rater.rate(0.5, rng) == pytest.approx(0.7)

    def test_negative_disposition(self, rng):
        rater = DispositionalRater(0, ELEVEN_LEVEL, variance=0.0, disposition=-0.2)
        assert rater.rate(0.5, rng) == pytest.approx(0.3)

    def test_mean_with_noise(self, rng):
        rater = DispositionalRater(0, ELEVEN_LEVEL, variance=0.01, disposition=0.1)
        ratings = [rater.rate(0.5, rng) for _ in range(300)]
        assert np.mean(ratings) == pytest.approx(0.6, abs=0.03)

    def test_not_honest_class(self):
        rater = DispositionalRater(0, ELEVEN_LEVEL, 0.1, 0.2)
        assert rater.rater_class is RaterClass.INDIVIDUAL_UNFAIR
        assert not rater.is_honest

    def test_extreme_disposition_rejected(self):
        with pytest.raises(ConfigurationError):
            DispositionalRater(0, ELEVEN_LEVEL, 0.1, disposition=1.5)


class TestRandomRater:
    def test_uniform_over_levels(self, rng):
        rater = RandomRater(0, ELEVEN_LEVEL)
        ratings = [rater.rate(0.9, rng) for _ in range(2000)]
        # Mean near the scale midpoint regardless of quality.
        assert np.mean(ratings) == pytest.approx(0.5, abs=0.05)
        assert len(set(np.round(ratings, 9))) == 11

    def test_variance_attribute_matches_scale(self):
        rater = RandomRater(0, ELEVEN_LEVEL)
        assert rater.variance == pytest.approx(np.var(ELEVEN_LEVEL.values))


class TestExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return individual_unfair.run(n_runs=15, seed=0)

    def test_registered(self):
        assert "individual-unfair" in REGISTRY

    def test_symmetric_dispositions_cancel(self, result):
        symmetric = result.outcomes["individual_symmetric"]
        campaign = result.outcomes["collaborative_campaign"]
        assert abs(symmetric.mean_shift) < 0.4 * abs(campaign.mean_shift)

    def test_campaign_transient_dominates(self, result):
        campaign = result.outcomes["collaborative_campaign"]
        for name in ("individual_symmetric", "individual_one_sided"):
            assert campaign.peak_window_shift > result.outcomes[
                name
            ].peak_window_shift

    def test_detector_fires_on_coordination_only(self, result):
        campaign = result.outcomes["collaborative_campaign"]
        assert campaign.detection_rate > 0.6
        for name in ("individual_symmetric", "individual_one_sided"):
            assert result.outcomes[name].detection_rate < campaign.detection_rate - 0.3

    def test_report_renders(self, result):
        report = individual_unfair.format_report(result)
        assert "mean shift" in report
        assert "AR detected" in report
