"""Tests for the sharded streaming rating engine."""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro.detectors.online import OnlineARDetector
from repro.errors import ConfigurationError, UnknownProductError
from repro.ratings.models import Rating
from repro.service import RatingEngine, ServiceConfig

BASE = dict(
    n_shards=2,
    batch_max_ratings=8,
    detector_window=12,
    detector_order=2,
    detector_stride=3,
    detector_threshold=0.2,
)


def make_stream(n, n_products=3, n_raters=10, seed=0, noise=0.08):
    """Smooth-but-noisy ratings across products: some windows alarm."""
    rng = np.random.default_rng(seed)
    ratings = []
    for i in range(n):
        value = np.clip(0.6 + 0.25 * math.sin(i / 7.0) + rng.normal(0, noise), 0, 1)
        ratings.append(
            Rating(
                rating_id=i,
                rater_id=int(rng.integers(0, n_raters)),
                product_id=i % n_products,
                value=round(float(value), 3),
                time=float(i),
            )
        )
    return ratings


class TestConfig:
    def test_invalid_shards(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(n_shards=0)

    def test_invalid_batch(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(batch_max_ratings=0)

    def test_invalid_detector_params_fail_fast(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(detector_window=4, detector_order=4)

    def test_roundtrip(self):
        config = ServiceConfig(n_shards=7, detector_stride=2, wal_dir="/tmp/x")
        assert ServiceConfig.from_dict(config.to_dict()) == config

    def test_from_dict_ignores_unknown_keys(self):
        config = ServiceConfig()
        data = config.to_dict()
        data["future_knob"] = 42
        assert ServiceConfig.from_dict(data) == config


class TestIngest:
    def test_accepts_and_counts(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        results = engine.submit_many(make_stream(50))
        assert all(r.accepted for r in results)
        assert [r.seq for r in results] == list(range(50))
        assert engine.n_accepted == 50

    def test_rejects_out_of_order_per_product(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        engine.submit(Rating(0, 1, 0, 0.5, time=5.0))
        result = engine.submit(Rating(1, 2, 0, 0.5, time=4.0))
        assert not result.accepted
        assert "out-of-order" in result.reason
        # Other products are independent timelines.
        assert engine.submit(Rating(2, 2, 1, 0.5, time=4.0)).accepted
        assert engine.snapshot_stats()["n_rejected"] == 1

    def test_equal_timestamps_accepted(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        engine.submit(Rating(0, 1, 0, 0.5, time=5.0))
        assert engine.submit(Rating(1, 2, 0, 0.6, time=5.0)).accepted

    def test_auto_registration(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        engine.submit(Rating(0, 123, 456, 0.5, time=0.0))
        assert engine.has_product(456)
        assert engine.trust(123) == 0.5  # prior until first flush


class TestQueries:
    def test_unknown_product_raises(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        with pytest.raises(UnknownProductError):
            engine.score(999)

    def test_score_is_trust_weighted(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        engine.submit_many(make_stream(120, n_products=1))
        engine.flush()
        # Recompute by hand from the engine's own trust table.
        stream = make_stream(120, n_products=1)
        values = [r.value for r in stream]
        trusts = [engine.trust(r.rater_id) for r in stream]
        expected = engine.aggregator.aggregate(values, trusts)
        assert engine.score(0) == pytest.approx(expected)

    def test_trust_prior_for_unknown_rater(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        assert engine.trust(424242) == 0.5

    def test_snapshot_stats_keys(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        engine.submit_many(make_stream(40))
        stats = engine.snapshot_stats()
        for key in (
            "uptime_seconds",
            "n_accepted",
            "n_rejected",
            "n_products",
            "n_raters",
            "ar_evaluations",
            "windows_flagged",
            "trust_updates",
            "ratings_per_second",
            "shards",
        ):
            assert key in stats
        assert stats["n_accepted"] == 40
        assert len(stats["shards"]) == 2
        assert sum(s["n_ratings"] for s in stats["shards"]) == 40


class TestBatching:
    def test_count_flush_cadence(self):
        # One product -> one shard; a flush every batch_max_ratings.
        engine = RatingEngine(ServiceConfig(**{**BASE, "batch_max_ratings": 10}))
        engine.submit_many(make_stream(35, n_products=1))
        assert engine.snapshot_stats()["trust_updates"] == 3
        engine.flush()
        assert engine.snapshot_stats()["trust_updates"] == 4

    def test_time_flush_deadline(self):
        # A zero-second deadline flushes on every submit.
        config = ServiceConfig(
            **{**BASE, "batch_max_ratings": 10_000, "batch_max_seconds": 0.0}
        )
        engine = RatingEngine(config)
        engine.submit_many(make_stream(5, n_products=1))
        assert engine.snapshot_stats()["trust_updates"] == 5

    def test_flush_is_idempotent_when_empty(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        engine.flush()
        engine.flush()
        assert engine.snapshot_stats()["trust_updates"] == 0


class TestSuspicionEquivalence:
    def test_matches_online_detector_accounting(self):
        """Engine charging == OnlineARDetector.suspicious_raters.

        Single shard, single product, no intermediate trust flushes:
        after the final flush each rater's failure evidence must be
        ``b * C_i`` with ``C_i`` the detector's own accumulated
        suspicion for an identical stream.
        """
        stream = make_stream(150, n_products=1, noise=0.05, seed=3)
        config = ServiceConfig(
            **{**BASE, "n_shards": 1, "batch_max_ratings": 10_000}
        )
        engine = RatingEngine(config)
        engine.submit_many(stream)

        reference = OnlineARDetector(
            order=config.detector_order,
            threshold=config.detector_threshold,
            window_size=config.detector_window,
            stride=config.detector_stride,
            method=config.detector_method,
            scale=config.detector_scale,
        )
        reference.observe_many(stream)
        expected = reference.suspicious_raters()
        assert expected, "test stream must trigger alarms"

        engine.flush()
        for rater_id, suspicion in expected.items():
            record = engine.trust_manager.record(rater_id)
            assert record.failures == pytest.approx(
                config.trust_badness_weight * suspicion
            )
        # Raters never charged carry no failure evidence.
        for rater_id in engine.trust_manager.rater_ids:
            if rater_id not in expected:
                assert engine.trust_manager.record(rater_id).failures == 0.0


class TestSharding:
    def test_shard_count_invariance(self):
        """Trust and scores don't depend on the shard layout."""
        stream = make_stream(200, n_products=6)
        tables, scores = [], []
        for n_shards in (1, 4):
            engine = RatingEngine(ServiceConfig(**{**BASE, "n_shards": n_shards}))
            engine.submit_many(stream)
            engine.flush()
            tables.append(engine.trust_table())
            scores.append([engine.score(p) for p in range(6)])
        assert tables[0].keys() == tables[1].keys()
        for rater_id in tables[0]:
            assert tables[0][rater_id] == pytest.approx(tables[1][rater_id])
        assert scores[0] == pytest.approx(scores[1])

    def test_concurrent_submissions(self):
        """Parallel writers over disjoint products never corrupt state."""
        engine = RatingEngine(ServiceConfig(**{**BASE, "n_shards": 4}))
        n_threads, per_thread = 4, 100
        errors = []

        def worker(product_id: int) -> None:
            try:
                for i in range(per_thread):
                    result = engine.submit(
                        Rating(
                            rating_id=product_id * per_thread + i,
                            rater_id=i % 7,
                            product_id=product_id,
                            value=0.5 + 0.3 * math.sin(i / 5.0),
                            time=float(i),
                        )
                    )
                    assert result.accepted
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(pid,)) for pid in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert engine.n_accepted == n_threads * per_thread
        engine.flush()
        stats = engine.snapshot_stats()
        assert stats["n_products"] == n_threads
        for trust in engine.trust_table().values():
            assert 0.0 <= trust <= 1.0


class TestScoreCache:
    def _metric(self, engine, name):
        return engine.metrics.counter(name).value

    def test_cached_score_equals_recompute(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        for rating in make_stream(300):
            engine.submit(rating)
        for pid in range(3):
            cached = engine.score(pid)
            assert cached == pytest.approx(engine._score_uncached(pid), abs=1e-12)
            # Second read is a hit and must not move the value.
            assert engine.score(pid) == pytest.approx(cached, abs=1e-15)

    def test_hit_and_miss_metrics(self):
        # Large batch so no trust flush invalidates between reads.
        engine = RatingEngine(ServiceConfig(**{**BASE, "batch_max_ratings": 10_000}))
        for rating in make_stream(60):
            engine.submit(rating)
        engine.score(0)
        assert self._metric(engine, "repro_score_cache_misses_total") == 1
        assert self._metric(engine, "repro_score_cache_hits_total") == 0
        engine.score(0)
        engine.score(0)
        assert self._metric(engine, "repro_score_cache_hits_total") == 2

    def test_trust_flush_invalidates(self):
        engine = RatingEngine(ServiceConfig(**{**BASE, "batch_max_ratings": 10_000}))
        for rating in make_stream(60):
            engine.submit(rating)
        engine.score(0)
        engine.flush()  # trust update -> new epoch
        engine.score(0)
        assert self._metric(engine, "repro_score_cache_misses_total") == 2
        assert engine.score(0) == pytest.approx(
            engine._score_uncached(0), abs=1e-12
        )

    def test_ingest_folds_into_current_entry(self):
        engine = RatingEngine(ServiceConfig(**{**BASE, "batch_max_ratings": 10_000}))
        ratings = make_stream(120)
        for rating in ratings[:60]:
            engine.submit(rating)
        engine.score(0)  # populate the entry
        for rating in ratings[60:]:
            engine.submit(rating)
        # The entry absorbed the new ratings incrementally: still a hit,
        # still equal to a full recompute.
        misses_before = self._metric(engine, "repro_score_cache_misses_total")
        assert engine.score(0) == pytest.approx(engine._score_uncached(0), abs=1e-12)
        assert self._metric(engine, "repro_score_cache_misses_total") == misses_before

    def test_unknown_product_still_raises(self):
        engine = RatingEngine(ServiceConfig(**BASE))
        with pytest.raises(UnknownProductError):
            engine.score(999)

    def test_scores_correct_across_many_flushes(self):
        # Flush every 8 ratings: entries go stale constantly; every read
        # must still agree with the recompute path.
        engine = RatingEngine(ServiceConfig(**BASE))
        for i, rating in enumerate(make_stream(240)):
            engine.submit(rating)
            if i % 17 == 0 and engine.has_product(rating.product_id):
                pid = rating.product_id
                assert engine.score(pid) == pytest.approx(
                    engine._score_uncached(pid), abs=1e-12
                )
