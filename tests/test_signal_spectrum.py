"""Tests for AR power-spectrum estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signal.ar import arcov, aryule
from repro.signal.spectrum import ar_power_spectrum, spectral_flatness


def narrowband_signal(rng, f0=0.15, n=2000):
    """A resonant AR(2) process with a spectral peak near f0."""
    r = 0.97
    a1 = -2 * r * np.cos(2 * np.pi * f0)
    a2 = r * r
    x = np.zeros(n + 200)
    noise = rng.normal(size=n + 200)
    for t in range(2, n + 200):
        x[t] = -a1 * x[t - 1] - a2 * x[t - 2] + noise[t]
    return x[200:]


class TestPowerSpectrum:
    def test_frequencies_span_nyquist(self, rng):
        model = arcov(rng.normal(size=100), order=4)
        spectrum = ar_power_spectrum(model, n_points=64)
        assert spectrum.frequencies[0] == 0.0
        assert spectrum.frequencies[-1] == 0.5
        assert spectrum.power.shape == (64,)

    def test_power_positive(self, rng):
        model = arcov(rng.normal(size=100), order=4)
        spectrum = ar_power_spectrum(model)
        assert np.all(spectrum.power > 0.0)

    def test_peak_at_resonance(self, rng):
        x = narrowband_signal(rng, f0=0.15)
        model = aryule(x, order=4)
        spectrum = ar_power_spectrum(model, n_points=512)
        assert spectrum.dominant_frequency() == pytest.approx(0.15, abs=0.02)

    def test_white_noise_flat(self, rng):
        x = rng.normal(size=5000)
        model = aryule(x, order=4)
        spectrum = ar_power_spectrum(model)
        assert spectral_flatness(spectrum) > 0.9

    def test_narrowband_not_flat(self, rng):
        x = narrowband_signal(rng)
        model = aryule(x, order=4)
        spectrum = ar_power_spectrum(model)
        assert spectral_flatness(spectrum) < 0.5

    def test_total_power_positive(self, rng):
        model = arcov(rng.normal(size=200), order=3)
        assert ar_power_spectrum(model).total_power > 0.0

    def test_too_few_points_rejected(self, rng):
        model = arcov(rng.normal(size=50), order=2)
        with pytest.raises(ConfigurationError):
            ar_power_spectrum(model, n_points=1)

    def test_collusion_window_less_flat_than_honest(self, rng):
        # Spectral view of the paper's premise: the campaign injects a
        # slowly varying component, tilting power toward low frequency.
        honest = np.clip(rng.normal(0.7, 0.45, size=60), 0, 1)
        attacked = honest.copy()
        attacked[20:50] = np.clip(rng.normal(0.85, 0.1, size=30), 0, 1)
        flat_honest = spectral_flatness(
            ar_power_spectrum(arcov(honest - honest.mean(), 4))
        )
        flat_attacked = spectral_flatness(
            ar_power_spectrum(arcov(attacked - attacked.mean(), 4))
        )
        assert flat_attacked < flat_honest
