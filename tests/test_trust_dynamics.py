"""Tests for the analytical trust-dynamics model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.trust.dynamics import (
    BehaviourProfile,
    asymptotic_trust,
    detection_interval,
    expected_trust_trajectory,
)
from repro.trust.manager import TrustManager, TrustManagerConfig


HONEST = BehaviourProfile(honest_rate=2.5, filter_rate=0.05)
COLLUDER = BehaviourProfile(
    honest_rate=0.2, unfair_rate=0.7, flag_rate=0.75, level=1.0
)


class TestIncrements:
    def test_honest_increments(self):
        assert HONEST.success_increment == pytest.approx(2.375)
        assert HONEST.failure_increment == pytest.approx(0.125)

    def test_colluder_failures_dominate(self):
        assert COLLUDER.failure_increment > COLLUDER.success_increment

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BehaviourProfile(honest_rate=-1.0)
        with pytest.raises(ConfigurationError):
            BehaviourProfile(honest_rate=1.0, filter_rate=1.5)
        with pytest.raises(ConfigurationError):
            BehaviourProfile(honest_rate=1.0, level=-0.1)


class TestTrajectory:
    def test_starts_near_prior_and_converges(self):
        trajectory = expected_trust_trajectory(HONEST, n_intervals=200)
        assert 0.5 < trajectory[0] < 0.95
        assert trajectory[-1] == pytest.approx(asymptotic_trust(HONEST), abs=0.02)

    def test_honest_rises_colluder_falls(self):
        honest = expected_trust_trajectory(HONEST, n_intervals=12)
        colluder = expected_trust_trajectory(COLLUDER, n_intervals=12)
        assert honest[-1] > 0.8
        assert colluder[-1] < 0.5

    def test_initial_evidence_shifts_start(self):
        pessimistic = expected_trust_trajectory(
            HONEST, n_intervals=3, initial_failures=5.0
        )
        neutral = expected_trust_trajectory(HONEST, n_intervals=3)
        assert pessimistic[0] < neutral[0]

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            expected_trust_trajectory(HONEST, n_intervals=0)
        with pytest.raises(ConfigurationError):
            expected_trust_trajectory(HONEST, n_intervals=5, forgetting_factor=1.5)


class TestAsymptote:
    def test_no_forgetting_is_rate_ratio(self):
        assert asymptotic_trust(COLLUDER) == pytest.approx(
            COLLUDER.success_increment
            / (COLLUDER.success_increment + COLLUDER.failure_increment)
        )

    def test_idle_rater_stays_neutral(self):
        idle = BehaviourProfile(honest_rate=0.0)
        assert asymptotic_trust(idle) == 0.5

    def test_forgetting_pulls_toward_prior(self):
        free = asymptotic_trust(HONEST, forgetting_factor=1.0)
        damped = asymptotic_trust(HONEST, forgetting_factor=0.5)
        assert 0.5 < damped < free

    def test_trajectory_converges_to_forgetting_asymptote(self):
        trajectory = expected_trust_trajectory(
            COLLUDER, n_intervals=300, forgetting_factor=0.8
        )
        assert trajectory[-1] == pytest.approx(
            asymptotic_trust(COLLUDER, forgetting_factor=0.8), abs=1e-6
        )


class TestDetectionInterval:
    def test_colluder_detected_quickly(self):
        interval = detection_interval(COLLUDER)
        assert interval is not None
        assert interval <= 4

    def test_honest_never_detected(self):
        assert detection_interval(HONEST, max_intervals=500) is None

    def test_trust_shield_regime(self):
        # Honest history first: a switch profile whose asymptote is
        # below 0.5 but whose accumulated capital delays the crossing.
        shielded = detection_interval(
            COLLUDER, initial_successes=20.0, max_intervals=200
        )
        fresh = detection_interval(COLLUDER, max_intervals=200)
        assert shielded is not None and fresh is not None
        assert shielded > fresh

    def test_forgetting_shrinks_shield(self):
        with_forgetting = detection_interval(
            COLLUDER, initial_successes=20.0, forgetting_factor=0.5
        )
        without = detection_interval(COLLUDER, initial_successes=20.0)
        assert with_forgetting is not None and without is not None
        assert with_forgetting < without

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            detection_interval(COLLUDER, threshold=0.0)


class TestAgainstSimulation:
    def test_matches_trust_manager_exactly_in_expectation(self):
        # Feed the manager the *expected* integer-free observations via
        # fractional evidence and confirm the closed form matches.
        profile = BehaviourProfile(
            honest_rate=1.0, unfair_rate=0.5, flag_rate=0.8, level=0.9
        )
        manager = TrustManager(TrustManagerConfig(badness_weight=1.0))
        analytic = expected_trust_trajectory(profile, n_intervals=6)
        record = manager.register_rater(0)
        for k in range(6):
            record.add_evidence(
                successes=profile.success_increment,
                failures=profile.failure_increment,
            )
            assert record.trust == pytest.approx(analytic[k])

    def test_predicts_monte_carlo_trust_manager(self, rng):
        # Stochastic Bernoulli observations average to the analytic curve.
        profile = BehaviourProfile(
            honest_rate=1.0, unfair_rate=1.0, flag_rate=0.7, level=1.0
        )
        n_raters, n_intervals = 400, 8
        manager = TrustManager()
        manager.register_raters(range(n_raters))
        for _ in range(n_intervals):
            for rater_id in range(n_raters):
                buffer = manager.observations
                buffer.record_provided(rater_id, count=2)  # 1 honest + 1 unfair
                if rng.uniform() < profile.flag_rate:
                    buffer.record_suspicious(rater_id)
                    buffer.record_suspicion_value(rater_id, profile.level)
            manager.update()
        simulated = np.mean([manager.trust(r) for r in range(n_raters)])
        analytic = expected_trust_trajectory(profile, n_intervals=n_intervals)[-1]
        assert simulated == pytest.approx(analytic, abs=0.03)
