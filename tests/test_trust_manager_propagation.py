"""Tests for the trust manager (Procedure 2) and the recommendation graph."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, UnknownRaterError
from repro.trust.manager import TrustManager, TrustManagerConfig
from repro.trust.propagation import SYSTEM_NODE, RecommendationGraph
from repro.trust.entropy_trust import entropy_trust


class TestTrustManagerConfig:
    def test_defaults_match_paper(self):
        config = TrustManagerConfig()
        assert config.badness_weight == 1.0
        assert config.detection_threshold == 0.5

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            TrustManagerConfig(badness_weight=-1.0)
        with pytest.raises(ConfigurationError):
            TrustManagerConfig(detection_threshold=1.5)
        with pytest.raises(ConfigurationError):
            TrustManagerConfig(forgetting_factor=2.0)
        with pytest.raises(ConfigurationError):
            TrustManagerConfig(indirect_weight=-0.1)


class TestProcedure2:
    def test_unseen_rater_sits_at_prior(self):
        assert TrustManager().trust(99) == 0.5

    def test_clean_ratings_raise_trust(self):
        manager = TrustManager()
        manager.observations.record_provided(1, count=5)
        manager.update()
        assert manager.trust(1) == pytest.approx(6.0 / 7.0)

    def test_filtered_ratings_lower_trust(self):
        manager = TrustManager()
        manager.observations.record_provided(1, count=2)
        manager.observations.record_filtered(1, count=2)
        manager.update()
        # S += 2 - 2 = 0, F += 2 -> trust (0+1)/(0+2+2).
        assert manager.trust(1) == pytest.approx(0.25)

    def test_suspicious_ratings_count_against_success(self):
        manager = TrustManager()
        manager.observations.record_provided(1, count=3)
        manager.observations.record_suspicious(1, count=3)
        manager.update()
        # S += 0, F += 0 (no suspicion value): trust stays neutral.
        assert manager.trust(1) == 0.5

    def test_suspicion_value_feeds_failures(self):
        manager = TrustManager(TrustManagerConfig(badness_weight=2.0))
        manager.observations.record_provided(1, count=1)
        manager.observations.record_suspicious(1, count=1)
        manager.observations.record_suspicion_value(1, 0.5)
        manager.update()
        # S += 0, F += b * 0.5 = 1.0.
        assert manager.trust(1) == pytest.approx(1.0 / 3.0)

    def test_update_checkpoints_all_known_raters(self):
        manager = TrustManager()
        manager.register_raters([1, 2])
        manager.observations.record_provided(1)
        manager.update()
        manager.update()
        assert len(manager.record(1).history) == 2
        assert len(manager.record(2).history) == 2

    def test_evidence_accumulates_across_updates(self):
        manager = TrustManager()
        for _ in range(3):
            manager.observations.record_provided(1, count=2)
            manager.update()
        assert manager.trust(1) == pytest.approx(7.0 / 8.0)

    def test_forgetting_factor_applied_each_update(self):
        manager = TrustManager(TrustManagerConfig(forgetting_factor=0.5))
        manager.observations.record_provided(1, count=8)
        manager.update()
        trust_before = manager.trust(1)
        manager.update()  # no new evidence; S halves
        assert manager.trust(1) < trust_before

    def test_record_unknown_rater_raises(self):
        with pytest.raises(UnknownRaterError):
            TrustManager().record(7)

    def test_trust_table(self):
        manager = TrustManager()
        manager.register_raters([1, 2])
        table = manager.trust_table()
        assert table == {1: 0.5, 2: 0.5}

    def test_n_updates(self):
        manager = TrustManager()
        assert manager.n_updates == 0
        manager.update()
        assert manager.n_updates == 1


class TestMaliciousDetection:
    def test_low_trust_raters_flagged(self):
        manager = TrustManager()
        manager.observations.record_provided(1, count=4)
        manager.observations.record_filtered(1, count=4)
        manager.observations.record_provided(2, count=4)
        manager.update()
        assert manager.detected_malicious() == [1]

    def test_threshold_configurable(self):
        manager = TrustManager(TrustManagerConfig(detection_threshold=0.9))
        manager.register_rater(1)
        manager.update()
        assert manager.detected_malicious() == [1]


class TestRecommendationGraph:
    def test_direct_path(self):
        graph = RecommendationGraph()
        graph.set_system_trust(1, 0.9)
        assert graph.indirect_trust(1) == pytest.approx(entropy_trust(0.9))

    def test_two_hop_concatenation(self):
        graph = RecommendationGraph()
        graph.set_system_trust(1, 0.9)
        graph.add_recommendation(1, 2, 0.9)
        expected = entropy_trust(0.9) * entropy_trust(0.9)
        assert graph.indirect_trust(2) == pytest.approx(expected)

    def test_unknown_target_is_uninformative(self):
        assert RecommendationGraph().indirect_trust(42) == 0.0

    def test_multipath_fusion(self):
        graph = RecommendationGraph()
        graph.set_system_trust(1, 0.95)
        graph.set_system_trust(2, 0.95)
        graph.add_recommendation(1, 3, 0.9)
        graph.add_recommendation(2, 3, 0.5)
        trust = graph.indirect_trust(3)
        # Fused between the strong and the uninformative path.
        assert 0.0 < trust < entropy_trust(0.9)

    def test_path_length_cap(self):
        graph = RecommendationGraph(max_path_length=2)
        graph.set_system_trust(1, 0.9)
        graph.add_recommendation(1, 2, 0.9)
        graph.add_recommendation(2, 3, 0.9)
        assert graph.indirect_trust(3) == 0.0  # needs 3 hops

    def test_self_recommendation_rejected(self):
        with pytest.raises(ConfigurationError):
            RecommendationGraph().add_recommendation(1, 1, 0.5)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            RecommendationGraph().set_system_trust(1, 1.5)


class TestIndirectBlend:
    def test_blend_disabled_by_default(self):
        manager = TrustManager()
        manager.register_rater(1)
        graph = manager.build_recommendation_graph()
        assert manager.blended_trust(1, graph) == manager.trust(1)

    def test_blend_moves_toward_indirect(self):
        manager = TrustManager(TrustManagerConfig(indirect_weight=0.5))
        manager.observations.record_provided(1, count=8)  # direct ~0.9
        manager.update()
        manager.recommendations.record(1, 2, 0.95)
        graph = manager.build_recommendation_graph()
        blended = manager.blended_trust(2, graph)
        assert blended != manager.trust(2)
        assert 0.5 <= blended <= 1.0

    def test_graph_drains_recommendation_buffer(self):
        manager = TrustManager()
        manager.register_rater(1)
        manager.recommendations.record(1, 2, 0.9)
        manager.build_recommendation_graph()
        assert len(manager.recommendations) == 0
