"""Concurrency stress test: the invariant the lock rules protect.

Eight threads hammer a single-shard :class:`RatingEngine` (every
product maps to the one shard, so all threads contend on the same
``_Shard.lock``).  Two properties must survive the interleaving:

1. **WAL order == apply order.**  The WAL is appended under the shard
   lock (the lone CC02 baseline entry in ``.lint-baseline.json``
   exists precisely to preserve this), so replaying the WAL through a
   fresh engine single-threaded must land on *bit-for-bit identical*
   trust values -- exact float equality, not approximate.
2. **No lost updates.**  With ``forgetting_factor=1.0`` trust evidence
   is purely additive, so the final trust table and counters are
   invariant to how the flush batching interleaves; every accepted
   rating is tallied exactly once (the ``_GUARDED_BY`` declarations
   checked by lint rule CC03 are what make this hold).

Each thread owns one product, so per-product time ordering is
deterministic and no rating is rejected as out-of-order.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from repro.ratings.models import Rating
from repro.service import RatingEngine, ServiceConfig

N_THREADS = 8
PER_THREAD = 120


def thread_ratings(thread_id, seed):
    """One thread's ratings: its own product, monotone times."""
    rng = np.random.default_rng(seed)
    out = []
    for i in range(PER_THREAD):
        value = 0.55 + 0.3 * math.sin((i + thread_id) / 9.0)
        value = float(np.clip(value + rng.normal(0, 0.05), 0, 1))
        out.append(
            Rating(
                rating_id=thread_id * PER_THREAD + i,
                rater_id=int(rng.integers(0, 12)),
                product_id=thread_id,
                value=round(value, 3),
                time=float(i),
            )
        )
    return out


def make_config(wal_dir):
    return ServiceConfig(
        n_shards=1,
        batch_max_ratings=16,
        detector_window=12,
        detector_order=2,
        detector_stride=3,
        detector_threshold=0.2,
        trust_forgetting_factor=1.0,
        wal_dir=str(wal_dir),
    )


def test_concurrent_submits_match_single_threaded_replay(tmp_path):
    engine = RatingEngine(make_config(tmp_path / "live"))
    batches = [thread_ratings(t, seed=100 + t) for t in range(N_THREADS)]

    barrier = threading.Barrier(N_THREADS)
    accepted = [0] * N_THREADS

    def worker(thread_id):
        barrier.wait()
        for rating in batches[thread_id]:
            result = engine.submit(rating)
            if result.accepted:
                accepted[thread_id] += 1

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    engine.flush()

    # Per-product times are monotone, so nothing may be rejected.
    assert accepted == [PER_THREAD] * N_THREADS
    assert engine.n_accepted == N_THREADS * PER_THREAD

    live_trust = engine.trust_table()
    live_stats = engine.snapshot_stats()
    engine.close()

    # Single-threaded replay of the live engine's own WAL.
    replayed = RatingEngine.recover(
        tmp_path / "live", config=make_config(tmp_path / "live")
    )
    replayed.flush()
    replay_trust = replayed.trust_table()
    replay_stats = replayed.snapshot_stats()
    replayed.close()

    # Exact equality: WAL order == per-shard apply order, and additive
    # evidence (forgetting=1.0) is invariant to flush partitioning.
    assert replay_trust == live_trust
    for key in ("n_accepted", "n_products", "n_raters", "windows_flagged"):
        assert replay_stats[key] == live_stats[key], key


def test_concurrent_totals_are_not_lost(tmp_path):
    """Shard counters under contention: every accepted rating counted once."""
    engine = RatingEngine(make_config(tmp_path / "wal"))
    batches = [thread_ratings(t, seed=7 + t) for t in range(N_THREADS)]
    threads = [
        threading.Thread(target=engine.submit_many, args=(batches[t],))
        for t in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    engine.flush()
    stats = engine.snapshot_stats()
    assert stats["n_accepted"] == N_THREADS * PER_THREAD
    assert stats["n_products"] == N_THREADS
    assert engine.metrics.counter("repro_ratings_accepted_total").value == (
        N_THREADS * PER_THREAD
    )
    engine.close()
