"""Tests for the multi-process sharded serving tier.

The expensive guarantees are checked end to end against real worker
processes: a single-worker cluster is bit-for-bit equivalent to the
in-process engine, a graceful stop never loses an acked rating, and a
SIGKILL'd worker is restarted and replayed back to the exact state of
an uninterrupted run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.ratings.models import Rating
from repro.service.cluster import ClusterCoordinator, ConsistentHashRing
from repro.service.cluster.framing import recv_msg, send_msg
from repro.service.config import ServiceConfig
from repro.service.engine import RatingEngine
from repro.service.http import start_background
from repro.service.metrics import MetricsRegistry


def make_stream(n=300, n_products=6, n_raters=10, seed=11):
    rng = random.Random(seed)
    stream = []
    t = 0.0
    for i in range(n):
        t += rng.random()
        stream.append(
            Rating(
                rating_id=i,
                rater_id=rng.randrange(n_raters),
                product_id=rng.randrange(n_products),
                value=rng.random(),
                time=t,
            )
        )
    return stream


def cluster_config(wal_dir, workers, **overrides):
    base = dict(
        cluster_workers=workers,
        wal_dir=str(wal_dir),
        batch_max_ratings=25,
        detector_window=16,
        detector_stride=8,
    )
    base.update(overrides)
    return ServiceConfig(**base)


# -- ring -------------------------------------------------------------------


class TestConsistentHashRing:
    def test_routing_is_deterministic_and_in_range(self):
        ring = ConsistentHashRing(4)
        again = ConsistentHashRing(4)
        for product_id in range(200):
            owner = ring.owner(product_id)
            assert 0 <= owner < 4
            assert again.owner(product_id) == owner

    def test_every_worker_owns_something(self):
        ring = ConsistentHashRing(4)
        spread = ring.spread(range(500))
        assert set(spread) == {0, 1, 2, 3}
        assert all(count > 0 for count in spread.values())

    def test_single_worker_owns_everything(self):
        ring = ConsistentHashRing(1)
        assert ring.spread(range(50)) == {0: 50}

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(0)
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(2, replicas=0)


# -- framing ----------------------------------------------------------------


def test_framing_round_trips_floats_bit_for_bit():
    left, right = multiprocessing.Pipe()
    message = {
        "type": "digest",
        "values": [0.1 + 0.2, 1e-308, float(2**53 - 1), -0.0],
    }
    send_msg(left, message)
    received = recv_msg(right)
    assert received == message
    assert [v.hex() for v in received["values"]] == [
        v.hex() for v in message["values"]
    ]
    left.close()
    right.close()


# -- config -----------------------------------------------------------------


class TestClusterConfig:
    def test_cluster_workers_require_wal_dir(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(cluster_workers=2)

    def test_worker_config_derivation(self, tmp_path):
        config = cluster_config(tmp_path, workers=3, n_shards=4)
        worker = config.worker_config(1)
        assert worker.n_shards == 1
        assert worker.cluster_workers == 0
        assert worker.snapshot_every == 0
        assert worker.wal_dir == f"{tmp_path}/worker-001"
        assert worker.batch_max_ratings == config.batch_max_ratings

    def test_worker_config_rejects_bad_index(self, tmp_path):
        config = cluster_config(tmp_path, workers=2)
        with pytest.raises(ConfigurationError):
            config.worker_config(2)


# -- metrics helpers --------------------------------------------------------


def test_counter_inc_to_is_monotone():
    registry = MetricsRegistry()
    counter = registry.counter("x_total")
    counter.inc_to(5)
    assert counter.value == 5
    counter.inc_to(3)  # stale lower total: no-op
    assert counter.value == 5
    counter.inc_to(9)
    assert counter.value == 9


# -- cluster end-to-end -----------------------------------------------------


@pytest.mark.slow
class TestClusterEquivalence:
    def test_single_worker_matches_in_process_engine(self, tmp_path):
        """The cluster is the engine, sharded: with one worker the whole
        pipeline (route, WAL, queue, digest, redelivery machinery) must
        produce bit-for-bit the in-process single-shard state."""
        stream = make_stream()
        reference = RatingEngine(
            config=ServiceConfig(
                n_shards=1,
                batch_max_ratings=25,
                detector_window=16,
                detector_stride=8,
            )
        )
        for rating in stream:
            reference.submit(rating)
        reference.flush()

        cluster = ClusterCoordinator(cluster_config(tmp_path, workers=1))
        try:
            for rating in stream:
                result = cluster.submit(rating)
                assert result.accepted and result.queued
            cluster.flush()
            assert cluster.trust_table() == reference.trust_table()
            assert cluster.suspicion_table() == reference.suspicion_table()
            assert cluster.detected_malicious() == reference.detected_malicious()
            for product_id in range(6):
                assert cluster.score(product_id) == reference.score(product_id)
        finally:
            cluster.close()

    def test_graceful_stop_loses_no_acked_rating(self, tmp_path):
        """close() drains the queues and snapshots: every acked rating
        must be present (and trust state identical) after reopening."""
        stream = make_stream(n=200)
        cluster = ClusterCoordinator(cluster_config(tmp_path, workers=2))
        for rating in stream:
            assert cluster.submit(rating).accepted
        cluster.flush()
        trust_before = cluster.trust_table()
        assert trust_before  # digests landed
        cluster.close()  # drains again; nothing new is pending

        reopened = ClusterCoordinator(cluster_config(tmp_path, workers=2))
        try:
            assert reopened.n_accepted == len(stream)
            stats = reopened.snapshot_stats()
            stored = sum(
                shard["n_ratings"]
                for worker in stats["workers"]
                for shard in worker["shards"]
            )
            rejected = sum(w["n_rejected"] for w in stats["workers"])
            assert stored + rejected == len(stream)
            assert rejected == 0  # monotone-time stream
            # close() flushed, so the reopened trust table includes
            # every pre-stop observation.
            assert reopened.trust_table() == trust_before
        finally:
            reopened.close()

    def test_worker_resize_is_rejected(self, tmp_path):
        cluster = ClusterCoordinator(cluster_config(tmp_path, workers=2))
        for rating in make_stream(n=40):
            cluster.submit(rating)
        cluster.close()
        with pytest.raises(ConfigurationError, match="resizing"):
            ClusterCoordinator(cluster_config(tmp_path, workers=3))


@pytest.mark.slow
class TestWorkerCrashRecovery:
    def test_sigkilled_worker_replays_to_identical_state(self, tmp_path):
        """SIGKILL one worker mid-stream; the supervisor restarts it and
        watermark redelivery + digest dedup must land the cluster on the
        exact state of an uninterrupted run.

        Flushes are explicit (batch above stream length) so the digest
        sequence is deterministic and the comparison can be exact.
        """
        stream = make_stream(n=300)
        flush_points = {120, 240}
        kill_at = 160

        def run(wal_dir, kill=False):
            config = cluster_config(
                wal_dir, workers=2, batch_max_ratings=10_000
            )
            cluster = ClusterCoordinator(config)
            try:
                for position, rating in enumerate(stream):
                    cluster.submit(rating)
                    if kill and position == kill_at:
                        victim = cluster._handles[0]
                        os.kill(victim.process.pid, signal.SIGKILL)
                    if position + 1 in flush_points:
                        # flush() itself rides out the in-flight restart
                        cluster.flush()
                cluster.flush()
                scores = {pid: cluster.score(pid) for pid in range(6)}
                return {
                    "trust": cluster.trust_table(),
                    "suspicion": cluster.suspicion_table(),
                    "malicious": cluster.detected_malicious(),
                    "scores": scores,
                    "n_accepted": cluster.n_accepted,
                }
            finally:
                cluster.close()

        reference = run(tmp_path / "reference")
        killed = run(tmp_path / "killed", kill=True)
        assert killed == reference

    def test_lost_wal_tail_never_reuses_sequence_numbers(self, tmp_path):
        """A coordinator crash can lose acks inside the group-commit
        fsync window while the workers durably applied those entries.
        Reopening must pad the ingest WAL past the workers' watermark
        so a fresh submit cannot alias an already-applied sequence."""
        stream = make_stream(n=60)
        cluster = ClusterCoordinator(
            cluster_config(tmp_path, workers=2, wal_gc=False)
        )
        for rating in stream:
            cluster.submit(rating)
        cluster.flush()
        cluster.close()

        # Simulate the torn tail: drop the last 7 appends from the
        # coordinator's ingest WAL, as if they never left the
        # group-commit buffer.  The workers' own WALs still hold them.
        segment = sorted((tmp_path / "coordinator").glob("wal-*.jsonl"))[-1]
        lines = segment.read_text(encoding="utf-8").splitlines(keepends=True)
        segment.write_text("".join(lines[:-7]), encoding="utf-8")

        reopened = ClusterCoordinator(
            cluster_config(tmp_path, workers=2, wal_gc=False)
        )
        try:
            # Padded back past every worker's watermark (= 59).
            assert reopened.n_accepted == len(stream)
            extra = Rating(
                rating_id=len(stream),
                rater_id=0,
                product_id=0,
                value=0.5,
                time=10_000.0,
            )
            result = reopened.submit(extra)
            assert result.seq == len(stream)  # not a reused 53..59
            reopened.flush()
        finally:
            reopened.close()


# -- HTTP integration -------------------------------------------------------


@pytest.mark.slow
class TestClusterHTTP:
    @pytest.fixture()
    def cluster_server(self, tmp_path):
        cluster = ClusterCoordinator(cluster_config(tmp_path, workers=2))
        server, thread = start_background(cluster)
        yield cluster, f"http://127.0.0.1:{server.server_address[1]}"
        server.shutdown()
        server.server_close()
        cluster.close()

    def test_post_ratings_returns_202_queued(self, cluster_server):
        _, base = cluster_server
        body = json.dumps(
            {"rater_id": 1, "product_id": 2, "value": 0.5, "time": 1.0}
        ).encode()
        request = urllib.request.Request(
            f"{base}/ratings", data=body, method="POST"
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 202
            payload = json.loads(response.read())
        assert payload["accepted"] is True
        assert payload["queued"] is True
        assert payload["seq"] == 0

    def test_metrics_exposes_worker_gauges(self, cluster_server):
        cluster, base = cluster_server
        cluster.submit(
            Rating(rating_id=1, rater_id=1, product_id=1, value=0.5, time=1.0)
        )
        with urllib.request.urlopen(f"{base}/metrics") as response:
            text = response.read().decode()
        assert 'repro_worker_up{worker="0"} 1' in text
        assert 'repro_worker_up{worker="1"} 1' in text
        assert 'repro_ingest_queue_depth{worker="0"}' in text
        assert "repro_ingest_latency_seconds" in text
        assert "repro_ratings_accepted_total 1" in text

    def test_score_after_ack_sees_the_rating(self, cluster_server):
        cluster, base = cluster_server
        cluster.submit(
            Rating(rating_id=2, rater_id=3, product_id=7, value=0.25, time=1.0)
        )
        with urllib.request.urlopen(f"{base}/products/7/score") as response:
            assert response.status == 200
            payload = json.loads(response.read())
        assert payload["score"] == pytest.approx(0.25)


@pytest.mark.slow
def test_serve_sigterm_drains_cluster(tmp_path):
    """`repro serve --workers N` + SIGTERM: the drain-then-exit path
    must leave every acked rating durably in the cluster."""
    wal_dir = tmp_path / "wal"
    port = _free_port()
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--workers",
            "2",
            "--wal-dir",
            str(wal_dir),
            "--port",
            str(port),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    try:
        base = f"http://127.0.0.1:{port}"
        _wait_healthy(base, process)
        accepted = 0
        for i in range(50):
            body = json.dumps(
                {"rater_id": i % 7, "product_id": i % 5, "value": 0.5, "time": float(i)}
            ).encode()
            request = urllib.request.Request(
                f"{base}/ratings", data=body, method="POST"
            )
            with urllib.request.urlopen(request) as response:
                assert response.status == 202
                accepted += 1
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=120)
        assert process.returncode == 0, output.decode()
        assert b"final snapshot" in output
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()

    reopened = ClusterCoordinator(cluster_config(wal_dir, workers=2))
    try:
        assert reopened.n_accepted == accepted
        stats = reopened.snapshot_stats()
        stored = sum(
            shard["n_ratings"]
            for worker in stats["workers"]
            for shard in worker["shards"]
        )
        assert stored + sum(w["n_rejected"] for w in stats["workers"]) == accepted
    finally:
        reopened.close()


def _free_port():
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_healthy(base, process, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            output = process.stdout.read().decode()
            raise AssertionError(f"serve exited early:\n{output}")
        try:
            with urllib.request.urlopen(f"{base}/healthz", timeout=1):
                return
        except OSError:
            time.sleep(0.1)
    raise AssertionError("service never became healthy")
