"""Tests for the whitewashing experiment and the pipeline hook."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import REGISTRY, whitewashing
from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace
from repro.simulation.pipeline import PipelineConfig, run_marketplace


SMALL = MarketplaceConfig(
    n_reliable=120, n_careless=60, n_pc=60, n_months=6, p_rate=0.04
)


class TestMonthEndHook:
    def test_hook_called_per_month(self):
        world = generate_marketplace(SMALL, np.random.default_rng(0))
        calls = []
        run_marketplace(
            world,
            PipelineConfig(),
            month_end_hook=lambda system, month: calls.append(month),
        )
        assert calls == list(range(SMALL.n_months))

    def test_hook_mutations_reach_snapshots(self):
        world = generate_marketplace(SMALL, np.random.default_rng(0))

        def zero_out(system, month):
            record = system.trust_manager.record(0)
            record.successes = 0.0
            record.failures = 100.0

        run = run_marketplace(world, PipelineConfig(), month_end_hook=zero_out)
        assert run.monthly_trust[-1][0] < 0.05


class TestWhitewashing:
    @pytest.fixture(scope="class")
    def result(self):
        return whitewashing.run(seed=5, config=SMALL)

    def test_registered(self):
        assert "whitewashing" in REGISTRY

    def test_three_variants(self, result):
        assert set(result.outcomes) == {
            "stable_ids",
            "whitewashing",
            "whitewashing_defended",
        }

    def test_whitewashing_erases_detection(self, result):
        assert result.outcomes["stable_ids"].detection_month12 > 0.5
        assert result.outcomes["whitewashing"].detection_month12 < 0.1

    def test_defense_restores_detection(self, result):
        assert (
            result.outcomes["whitewashing_defended"].detection_month12
            > result.outcomes["whitewashing"].detection_month12 + 0.3
        )

    def test_resets_happen_only_under_churn(self, result):
        assert result.outcomes["stable_ids"].n_resets == 0
        assert result.outcomes["whitewashing"].n_resets > 0

    def test_damage_stays_bounded_under_defense(self, result):
        defended = result.outcomes["whitewashing_defended"]
        churned = result.outcomes["whitewashing"]
        assert (
            defended.dishonest_errors.mean_signed_error
            <= churned.dishonest_errors.mean_signed_error + 0.01
        )

    def test_no_false_alarms(self, result):
        for outcome in result.outcomes.values():
            assert outcome.false_alarm_month12 <= 0.05

    def test_report_renders(self, result):
        report = whitewashing.format_report(result)
        assert "stable_ids" in report
        assert "identity resets" in report
