"""Tests for the pluggable rating-store backends.

The contract under test: `InMemoryBackend` and `TieredRatingBackend`
are observationally equivalent through both the `RatingStore` API and
the full `RatingEngine` pipeline — including a hot window small enough
to force cold-tier reads — and the tiered backend is what licenses WAL
segment garbage collection.
"""

from __future__ import annotations

import pytest

from repro.ratings import (
    InMemoryBackend,
    Product,
    RaterClass,
    RaterProfile,
    RatingStore,
    TieredRatingBackend,
)
from repro.service import RatingEngine, ServiceConfig, list_segments
from repro.service.wal import list_snapshots
from tests.test_service_engine import BASE, make_stream


def _backends(tmp_path, hot_window=4):
    return {
        "memory": InMemoryBackend(),
        "tiered": TieredRatingBackend(
            path=tmp_path / "tiered.sqlite", hot_window=hot_window
        ),
        "tiered-ram": TieredRatingBackend(path=None, hot_window=hot_window),
    }


def _populated_store(backend, stream):
    store = RatingStore(backend=backend)
    for pid in {r.product_id for r in stream}:
        store.add_product(Product(product_id=pid, quality=0.5))
    for rid in {r.rater_id for r in stream}:
        store.add_rater(
            RaterProfile(rater_id=rid, rater_class=RaterClass.RELIABLE)
        )
    for seq, rating in enumerate(stream):
        store.add_rating(rating, seq=seq)
    return store


class TestStoreEquivalence:
    def test_reads_agree_across_backends(self, tmp_path):
        """Tiny hot window: most reads must come off the cold tier and
        still agree with the in-memory reference, in order."""
        stream = make_stream(120, n_products=4, n_raters=9, seed=3)
        stores = {
            name: _populated_store(backend, stream)
            for name, backend in _backends(tmp_path).items()
        }
        reference = stores.pop("memory")
        for name, store in stores.items():
            assert store.n_ratings == reference.n_ratings, name
            for pid in reference.product_ids:
                assert [
                    (r.rater_id, r.value, r.time)
                    for r in store.backend.product_ratings(pid)
                ] == [
                    (r.rater_id, r.value, r.time)
                    for r in reference.backend.product_ratings(pid)
                ], (name, pid)
            for rid in reference.rater_ids:
                assert [
                    (r.product_id, r.value, r.time)
                    for r in store.backend.rater_ratings(rid)
                ] == [
                    (r.product_id, r.value, r.time)
                    for r in reference.backend.rater_ratings(rid)
                ], (name, rid)
            for rating in stream[:20]:
                assert store.has_rated(rating.rater_id, rating.product_id)
            assert not store.has_rated(10_000, 0)

    def test_hot_window_fast_path_matches_cold(self, tmp_path):
        """A product whose history fits the hot window is served from
        numpy; one that overflows is served from sqlite. Same answers."""
        stream = make_stream(40, n_products=2, n_raters=6, seed=4)
        backend = TieredRatingBackend(path=tmp_path / "t.sqlite", hot_window=100)
        small = TieredRatingBackend(path=tmp_path / "s.sqlite", hot_window=2)
        for seq, rating in enumerate(stream):
            backend.add(rating, seq=seq)
            small.add(rating, seq=seq)
        for pid in (0, 1):
            assert [r.value for r in backend.product_ratings(pid)] == [
                r.value for r in small.product_ratings(pid)
            ]
        stats = small.stats()
        assert stats["hot_ratings"] <= 2 * 2  # hot_window * n_products
        assert small.n_ratings == 40

    def test_persistence_across_reopen(self, tmp_path):
        stream = make_stream(30, seed=5)
        path = tmp_path / "t.sqlite"
        backend = TieredRatingBackend(path=path, hot_window=8)
        for seq, rating in enumerate(stream):
            backend.add(rating, seq=seq)
        backend.commit()
        backend.close()

        reopened = TieredRatingBackend(path=path, hot_window=8)
        assert reopened.n_ratings == 30
        assert sorted(reopened.product_ids()) == sorted(
            {r.product_id for r in stream}
        )
        assert [r.value for r in reopened.all_ratings()] == [
            r.value for r in stream
        ]
        reopened.close()

    def test_clear_drops_pending_commit_credit(self, tmp_path):
        """clear() with uncommitted buffered rows must reset the pending
        counter: the cleared rows were never committed, so they must not
        inflate cold_ratings on the next commit."""
        stream = make_stream(20, seed=11)
        backend = TieredRatingBackend(path=tmp_path / "t.sqlite", hot_window=4)
        for seq, rating in enumerate(stream[:10]):
            backend.add(rating, seq=seq)
        # Rows are buffered but not committed; clearing discards them.
        backend.clear()
        assert backend.n_ratings == 0
        for seq, rating in enumerate(stream[10:]):
            backend.add(rating, seq=seq)
        backend.commit()
        assert backend.stats()["cold_ratings"] == 10
        assert backend.n_ratings == 10
        backend.close()

    def test_truncate_from_rolls_back(self, tmp_path):
        stream = make_stream(50, seed=6)
        backend = TieredRatingBackend(path=tmp_path / "t.sqlite", hot_window=4)
        for seq, rating in enumerate(stream):
            backend.add(rating, seq=seq)
        kept = backend.truncate_from(20)
        assert kept == 20
        assert backend.n_ratings == 20
        assert [r.value for r in backend.all_ratings()] == [
            r.value for r in stream[:20]
        ]

    def test_add_is_idempotent_by_seq(self, tmp_path):
        """INSERT OR REPLACE on seq: re-ingesting a replayed suffix
        must not duplicate rows."""
        stream = make_stream(20, seed=7)
        backend = TieredRatingBackend(path=tmp_path / "t.sqlite", hot_window=100)
        for seq, rating in enumerate(stream):
            backend.add(rating, seq=seq)
        for seq, rating in enumerate(stream[10:], start=10):
            backend.add(rating, seq=seq)
        backend.commit()
        assert backend.stats()["cold_ratings"] == 20

    def test_clear_empties_both_tiers(self, tmp_path):
        backend = TieredRatingBackend(path=tmp_path / "t.sqlite", hot_window=4)
        for seq, rating in enumerate(make_stream(15, seed=8)):
            backend.add(rating, seq=seq)
        backend.clear()
        assert backend.n_ratings == 0
        assert backend.all_ratings() == []
        assert backend.stats()["cold_ratings"] == 0


class TestEngineEquivalence:
    def test_memory_and_tiered_engines_agree(self, tmp_path):
        """Same stream through both backends (tiered with a detector-
        sized hot window): identical trust, scores, and counters."""
        stream = make_stream(200, seed=9)
        engines = {}
        for name in ("memory", "tiered"):
            config = ServiceConfig(
                wal_dir=str(tmp_path / name),
                store_backend=name,
                **BASE,
            )
            engine = RatingEngine(config)
            engine.submit_many(stream)
            engine.flush()
            engines[name] = engine

        memory, tiered = engines["memory"], engines["tiered"]
        assert tiered.trust_table() == memory.trust_table()
        for pid in range(3):
            assert tiered.score(pid) == memory.score(pid)
        m_stats, t_stats = memory.snapshot_stats(), tiered.snapshot_stats()
        for key in ("n_accepted", "ar_evaluations", "windows_flagged",
                    "trust_updates", "n_products", "n_raters"):
            assert t_stats[key] == m_stats[key], key
        for engine in engines.values():
            engine.close()

    def test_storage_stats_shape(self, tmp_path):
        config = ServiceConfig(
            wal_dir=str(tmp_path), store_backend="tiered", **BASE
        )
        engine = RatingEngine(config)
        engine.submit_many(make_stream(60, seed=10))
        engine.flush()
        stats = engine.storage_stats()
        assert stats["backend"] == "tiered"
        assert len(stats["shards"]) == BASE["n_shards"]
        assert stats["cold_ratings"] + stats["pending_ratings"] == 60
        assert stats["wal"]["n_entries"] == 60
        assert stats["wal"]["n_segments"] >= 1
        engine.close()


class TestWalGc:
    def test_tiered_snapshot_collects_covered_segments(self, tmp_path):
        """With durable cold tiers, snapshotting deletes every sealed
        segment the snapshot covers and keeps one snapshot."""
        config = ServiceConfig(
            wal_dir=str(tmp_path),
            store_backend="tiered",
            wal_segment_entries=25,
            **BASE,
        )
        engine = RatingEngine(config)
        engine.submit_many(make_stream(130, seed=11))
        engine.snapshot()
        starts = [start for start, _ in list_segments(tmp_path)]
        assert starts, "active segment always survives"
        assert min(starts) >= 100, starts
        assert engine.wal.first_seq == min(starts)
        assert len(list_snapshots(tmp_path)) == 1
        engine.close()

    def test_memory_backend_keeps_all_segments(self, tmp_path):
        """The memory backend rebuilds its store from the log, so GC
        must only prune snapshots, never segments."""
        config = ServiceConfig(
            wal_dir=str(tmp_path), wal_segment_entries=25, **BASE
        )
        engine = RatingEngine(config)
        engine.submit_many(make_stream(130, seed=11))
        engine.snapshot()
        starts = [start for start, _ in list_segments(tmp_path)]
        assert min(starts) == 0
        assert len(list_snapshots(tmp_path)) == 1
        engine.close()

    def test_gc_disabled_keeps_everything(self, tmp_path):
        config = ServiceConfig(
            wal_dir=str(tmp_path),
            store_backend="tiered",
            wal_segment_entries=25,
            wal_gc=False,
            snapshot_every=40,
            **BASE,
        )
        engine = RatingEngine(config)
        engine.submit_many(make_stream(130, seed=11))
        engine.snapshot()
        starts = [start for start, _ in list_segments(tmp_path)]
        assert min(starts) == 0
        assert len(list_snapshots(tmp_path)) >= 2
        engine.close()

    def test_recovery_after_gc(self, tmp_path):
        """Post-GC recovery: prefix from the cold tier, suffix from the
        surviving segments; result matches an uninterrupted run."""
        stream = make_stream(160, seed=12)
        reference = RatingEngine(
            ServiceConfig(
                wal_dir=str(tmp_path / "ref"), store_backend="tiered", **BASE
            )
        )
        reference.submit_many(stream)
        reference.flush()

        crash_dir = tmp_path / "crash"
        engine = RatingEngine(
            ServiceConfig(
                wal_dir=str(crash_dir),
                store_backend="tiered",
                wal_segment_entries=20,
                snapshot_every=50,
                **BASE,
            )
        )
        engine.submit_many(stream)
        assert engine.wal.first_seq > 0, "GC must have run for this test"
        engine.wal.close()  # crash: only the owner lock is released
        del engine

        recovered = RatingEngine.recover(crash_dir)
        recovered.flush()
        assert recovered.n_accepted == 160
        assert recovered.trust_table() == reference.trust_table()
        for pid in range(3):
            assert recovered.score(pid) == reference.score(pid)
        recovered.close()
        reference.close()

    def test_memory_recovery_refuses_gcd_log(self, tmp_path):
        """A memory-backend engine pointed at a GC'd log fails loudly
        instead of silently recovering a hole."""
        from repro.errors import ConfigurationError

        config = ServiceConfig(
            wal_dir=str(tmp_path),
            store_backend="tiered",
            wal_segment_entries=10,
            snapshot_every=30,
            **BASE,
        )
        engine = RatingEngine(config)
        engine.submit_many(make_stream(60, seed=13))
        assert engine.wal.first_seq > 0
        engine.close()
        for snapshot in list_snapshots(tmp_path):
            snapshot.unlink()
        with pytest.raises(ConfigurationError):
            RatingEngine.recover(
                tmp_path, config=ServiceConfig(wal_dir=str(tmp_path), **BASE)
            )
