"""Tests for the synthetic Netflix-like trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.netflix import (
    DINOSAUR_PLANET,
    NetflixTraceConfig,
    generate_netflix_trace,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def trace():
    return generate_netflix_trace(DINOSAUR_PLANET, np.random.default_rng(1))


class TestConfig:
    def test_arrival_rate_ramps(self):
        config = DINOSAUR_PLANET
        assert config.arrival_rate(0.0) == 0.0
        assert config.arrival_rate(config.ramp_days) > config.arrival_rate(10.0)

    def test_arrival_rate_decays(self):
        config = DINOSAUR_PLANET
        late = config.arrival_rate(600.0)
        peak_era = config.arrival_rate(61.0)
        assert late < peak_era

    def test_weekend_boost(self):
        config = NetflixTraceConfig(weekend_boost=2.0)
        weekday = config.arrival_rate(100.0)  # day 100 % 7 == 2
        weekend = config.arrival_rate(103.0)  # day 103 % 7 == 5
        assert weekend == pytest.approx(2.0 * weekday, rel=0.2)

    def test_rate_zero_outside_span(self):
        assert DINOSAUR_PLANET.arrival_rate(-1.0) == 0.0
        assert DINOSAUR_PLANET.arrival_rate(1e5) == 0.0

    def test_mean_star_value(self):
        assert DINOSAUR_PLANET.mean_star_value == pytest.approx(0.644, abs=0.01)

    def test_bad_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            NetflixTraceConfig(star_probabilities=(0.5, 0.5, 0.0, 0.0, 0.5))

    def test_bad_shape_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            NetflixTraceConfig(n_days=0.0)
        with pytest.raises(ConfigurationError):
            NetflixTraceConfig(weekend_boost=0.5)


class TestTrace:
    def test_trace_size_plausible(self, trace):
        # Peak 8/day with decay over 700 days lands in the few-thousand
        # band like the real title.
        assert 1500 <= len(trace) <= 8000

    def test_times_span_most_of_the_window(self, trace):
        assert trace.times.min() < 100.0
        assert trace.times.max() > 500.0

    def test_values_are_star_levels(self, trace):
        levels = {0.2, 0.4, 0.6, 0.8, 1.0}
        assert set(np.round(trace.values, 9)) <= levels

    def test_mean_matches_star_distribution(self, trace):
        assert trace.mean() == pytest.approx(
            DINOSAUR_PLANET.mean_star_value, abs=0.03
        )

    def test_fresh_rater_per_rating(self, trace):
        rater_ids = trace.rater_ids
        assert len(set(rater_ids.tolist())) == len(rater_ids)

    def test_no_unfair_ground_truth(self, trace):
        assert not trace.unfair_flags.any()

    def test_arrivals_denser_near_peak(self, trace):
        early = len(trace.between(60.0, 160.0))
        late = len(trace.between(560.0, 660.0))
        assert early > late

    def test_opinion_drift_tilts_late_ratings(self):
        config = NetflixTraceConfig(opinion_drift=2.0)
        drifted = generate_netflix_trace(config, np.random.default_rng(3))
        early = drifted.between(0.0, 200.0).mean()
        late = drifted.between(500.0, 700.0).mean()
        assert late > early

    def test_reproducible(self):
        a = generate_netflix_trace(DINOSAUR_PLANET, np.random.default_rng(2))
        b = generate_netflix_trace(DINOSAUR_PLANET, np.random.default_rng(2))
        np.testing.assert_array_equal(a.values, b.values)
