"""Tests for rater behaviour models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.raters.collaborative import (
    PotentialCollaborativeRater,
    Type1CollaborativeRater,
    Type2CollaborativeRater,
)
from repro.raters.honest import CarelessRater, ReliableRater
from repro.ratings.models import RaterClass
from repro.ratings.scales import ELEVEN_LEVEL


class TestHonestRaters:
    def test_mean_tracks_quality(self, rng):
        rater = ReliableRater(rater_id=0, scale=ELEVEN_LEVEL, variance=0.01)
        ratings = [rater.rate(0.7, rng) for _ in range(500)]
        assert np.mean(ratings) == pytest.approx(0.7, abs=0.03)

    def test_zero_variance_is_deterministic(self, rng):
        rater = ReliableRater(rater_id=0, scale=ELEVEN_LEVEL, variance=0.0)
        assert rater.rate(0.73, rng) == pytest.approx(0.7)

    def test_careless_wider_than_reliable(self, rng):
        reliable = ReliableRater(0, ELEVEN_LEVEL, variance=0.05)
        careless = CarelessRater(1, ELEVEN_LEVEL, variance=0.3)
        rng2 = np.random.default_rng(12345)
        r_vals = [reliable.rate(0.5, rng) for _ in range(500)]
        c_vals = [careless.rate(0.5, rng2) for _ in range(500)]
        assert np.std(c_vals) > np.std(r_vals)

    def test_ratings_always_on_scale(self, rng):
        rater = CarelessRater(0, ELEVEN_LEVEL, variance=0.5)
        levels = set(np.round(ELEVEN_LEVEL.values, 9))
        for _ in range(100):
            assert round(rater.rate(0.5, rng), 9) in levels

    def test_classes_and_honesty(self):
        assert ReliableRater(0, ELEVEN_LEVEL, 0.1).is_honest
        assert CarelessRater(0, ELEVEN_LEVEL, 0.1).is_honest
        assert CarelessRater(0, ELEVEN_LEVEL, 0.1).rater_class is RaterClass.CARELESS

    def test_profile_carries_variance(self):
        profile = ReliableRater(7, ELEVEN_LEVEL, 0.2).profile()
        assert profile.rater_id == 7
        assert profile.variance == 0.2

    def test_negative_variance_rejected(self):
        with pytest.raises(ConfigurationError):
            ReliableRater(0, ELEVEN_LEVEL, variance=-0.1)


class TestType1:
    def test_shift_applied(self, rng):
        rater = Type1CollaborativeRater(0, ELEVEN_LEVEL, variance=0.0, bias_shift=0.2)
        assert rater.rate(0.5, rng) == pytest.approx(0.7)

    def test_honest_opinion_unshifted(self, rng):
        rater = Type1CollaborativeRater(0, ELEVEN_LEVEL, variance=0.0, bias_shift=0.2)
        assert rater.honest_opinion(0.5, rng) == pytest.approx(0.5)

    def test_mean_shift_with_noise(self, rng):
        rater = Type1CollaborativeRater(0, ELEVEN_LEVEL, variance=0.01, bias_shift=0.2)
        ratings = [rater.rate(0.5, rng) for _ in range(500)]
        assert np.mean(ratings) == pytest.approx(0.7, abs=0.03)

    def test_not_honest(self):
        rater = Type1CollaborativeRater(0, ELEVEN_LEVEL, 0.1, 0.2)
        assert not rater.is_honest


class TestType2:
    def test_mean_and_tightness(self, rng):
        rater = Type2CollaborativeRater(
            0, ELEVEN_LEVEL, bias_shift=0.15, bad_variance=0.02
        )
        ratings = np.array([rater.rate(0.6, rng) for _ in range(500)])
        assert np.mean(ratings) == pytest.approx(0.75, abs=0.03)
        assert np.std(ratings) < 0.2

    def test_downgrade_direction(self, rng):
        rater = Type2CollaborativeRater(
            0, ELEVEN_LEVEL, bias_shift=-0.3, bad_variance=0.0
        )
        assert rater.rate(0.8, rng) == pytest.approx(0.5)


class TestPotentialCollaborative:
    def test_honest_until_recruited(self, rng):
        rater = PotentialCollaborativeRater(
            0, ELEVEN_LEVEL, honest_variance=0.0, bias_shift=0.2, bad_variance=0.0
        )
        assert rater.rate(0.5, rng) == pytest.approx(0.5)
        rater.recruited = True
        assert rater.rate(0.5, rng) == pytest.approx(0.7)
        rater.recruited = False
        assert rater.rate(0.5, rng) == pytest.approx(0.5)

    def test_recruited_variance_is_bad_variance(self, rng):
        rater = PotentialCollaborativeRater(
            0, ELEVEN_LEVEL, honest_variance=0.3, bias_shift=0.1, bad_variance=0.001
        )
        rater.recruited = True
        ratings = [rater.rate(0.5, rng) for _ in range(200)]
        assert np.std(ratings) < 0.1

    def test_negative_bad_variance_rejected(self):
        with pytest.raises(ConfigurationError):
            PotentialCollaborativeRater(0, ELEVEN_LEVEL, 0.1, 0.1, bad_variance=-1.0)

    def test_class(self):
        rater = PotentialCollaborativeRater(0, ELEVEN_LEVEL, 0.1, 0.1, 0.01)
        assert rater.rater_class is RaterClass.POTENTIAL_COLLABORATIVE
