"""Tests for count and time windowers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.signal.windows import CountWindower, TimeWindower, Window, moving_average


class TestCountWindower:
    def test_non_overlapping_partition(self):
        times = np.arange(10.0)
        windows = list(CountWindower(size=5).windows(times))
        assert len(windows) == 2
        assert windows[0].indices.tolist() == [0, 1, 2, 3, 4]
        assert windows[1].indices.tolist() == [5, 6, 7, 8, 9]

    def test_overlapping_step(self):
        times = np.arange(10.0)
        windows = list(CountWindower(size=4, step=2).windows(times))
        assert [w.indices[0] for w in windows] == [0, 2, 4, 6]
        assert all(w.size == 4 for w in windows)

    def test_window_times_match_edges(self):
        times = np.array([0.0, 1.5, 3.0, 7.0])
        (window,) = CountWindower(size=4).windows(times)
        assert window.start_time == 0.0
        assert window.end_time == 7.0
        assert window.mid_time == pytest.approx(3.5)

    def test_tail_included_on_request(self):
        times = np.arange(7.0)
        windows = list(CountWindower(size=3, include_tail=True).windows(times))
        assert windows[-1].indices.tolist() == [6]

    def test_tail_respects_min_tail(self):
        times = np.arange(7.0)
        windows = list(
            CountWindower(size=3, include_tail=True, min_tail=2).windows(times)
        )
        assert windows[-1].indices.tolist() == [3, 4, 5]

    def test_too_few_samples_yields_nothing(self):
        assert list(CountWindower(size=5).windows(np.arange(3.0))) == []

    def test_indices_are_sequential(self):
        times = np.arange(30.0)
        windows = list(CountWindower(size=10, step=5).windows(times))
        assert [w.index for w in windows] == list(range(len(windows)))

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            CountWindower(size=0)

    def test_invalid_step_rejected(self):
        with pytest.raises(ConfigurationError):
            CountWindower(size=5, step=0)

    def test_values_extraction(self):
        times = np.arange(6.0)
        data = times * 10
        (w1, w2) = CountWindower(size=3).windows(times)
        np.testing.assert_array_equal(w2.values(data), [30.0, 40.0, 50.0])


class TestTimeWindower:
    def test_partition_by_days(self):
        times = np.array([0.5, 1.5, 2.5, 3.5, 4.5])
        windows = list(TimeWindower(length=2.0, origin=0.0).windows(times))
        assert [w.indices.tolist() for w in windows] == [[0, 1], [2, 3], [4]]

    def test_overlap(self):
        times = np.linspace(0, 9.9, 100)
        windows = list(TimeWindower(length=10.0, step=5.0, origin=0.0).windows(times))
        # One full window plus one half-covered window starting at 5.
        assert len(windows) == 2
        assert windows[1].start_time == 5.0

    def test_drop_empty_windows(self):
        times = np.array([0.5, 20.5])
        windows = list(TimeWindower(length=1.0, origin=0.0).windows(times))
        assert len(windows) == 2

    def test_keep_empty_windows(self):
        times = np.array([0.5, 2.5])
        windows = list(
            TimeWindower(length=1.0, origin=0.0, drop_empty=False).windows(times)
        )
        assert len(windows) == 3
        assert windows[1].size == 0

    def test_min_count(self):
        times = np.array([0.1, 0.2, 0.3, 1.5])
        windows = list(
            TimeWindower(length=1.0, origin=0.0, min_count=2).windows(times)
        )
        assert len(windows) == 1
        assert windows[0].size == 3

    def test_horizon_extends_coverage(self):
        times = np.array([0.5])
        windows = list(
            TimeWindower(length=1.0, origin=0.0, drop_empty=False).windows(
                times, horizon=3.0
            )
        )
        assert len(windows) == 4  # [0,1) [1,2) [2,3) [3,4)

    def test_default_origin_is_first_rating(self):
        times = np.array([10.0, 10.5, 11.0])
        (window,) = TimeWindower(length=2.0).windows(times)
        assert window.start_time == 10.0

    def test_empty_times(self):
        assert list(TimeWindower(length=1.0).windows(np.empty(0))) == []

    def test_boundaries_left_closed_right_open(self):
        times = np.array([0.0, 1.0, 2.0])
        windows = list(TimeWindower(length=1.0, origin=0.0).windows(times))
        assert [w.indices.tolist() for w in windows] == [[0], [1], [2]]

    def test_invalid_length_rejected(self):
        with pytest.raises(ConfigurationError):
            TimeWindower(length=0.0)

    def test_invalid_step_rejected(self):
        with pytest.raises(ConfigurationError):
            TimeWindower(length=1.0, step=-1.0)


class TestMovingAverage:
    def test_window_means(self):
        times = np.arange(4.0)
        values = np.array([0.0, 1.0, 2.0, 3.0])
        mids, means = moving_average(times, values, size=2, step=2)
        np.testing.assert_allclose(means, [0.5, 2.5])

    def test_overlapping_average(self):
        times = np.arange(6.0)
        values = np.ones(6)
        _, means = moving_average(times, values, size=4, step=1)
        np.testing.assert_allclose(means, np.ones(3))

    def test_empty_when_too_short(self):
        mids, means = moving_average([0.0], [1.0], size=2, step=1)
        assert mids.size == 0 and means.size == 0
