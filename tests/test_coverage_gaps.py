"""Targeted tests for paths the main suites exercise only indirectly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.strategies import CollusionStrategy
from repro.core.system import TrustEnhancedRatingSystem
from repro.detectors.base import SuspicionReport
from repro.detectors.online import OnlineARDetector
from repro.errors import ConfigurationError
from repro.filters.base import WindowedFilter
from repro.filters.robust import ZScoreFilter
from repro.ratings.models import Product, RaterClass, RaterProfile
from repro.reporting import to_jsonable
from repro.trust.propagation import SYSTEM_NODE, RecommendationGraph
from tests.conftest import make_rating, make_stream


class TestPropagationExtras:
    def test_paths_to_lists_all_routes(self):
        graph = RecommendationGraph()
        graph.set_system_trust(1, 0.9)
        graph.set_system_trust(2, 0.8)
        graph.add_recommendation(1, 3, 0.9)
        graph.add_recommendation(2, 3, 0.7)
        paths = graph.paths_to(3)
        assert len(paths) == 2
        assert all(path[0] == SYSTEM_NODE and path[-1] == 3 for path in paths)

    def test_paths_to_unknown_node(self):
        assert RecommendationGraph().paths_to(99) == []

    def test_indirect_trust_table(self):
        graph = RecommendationGraph()
        graph.set_system_trust(1, 0.9)
        graph.add_recommendation(1, 2, 0.9)
        table = graph.indirect_trust_table([1, 2, 77])
        assert set(table) == {1, 2, 77}
        assert table[77] == 0.0
        assert table[1] > table[2] > 0.0

    def test_n_raters_excludes_system_node(self):
        graph = RecommendationGraph()
        graph.set_system_trust(1, 0.9)
        graph.set_system_trust(2, 0.9)
        assert graph.n_raters == 2


class TestSuspicionReportExtras:
    def test_statistic_series_alignment(self, rng):
        from repro.detectors.ar_detector import ARModelErrorDetector
        from repro.signal.windows import CountWindower

        stream = make_stream(
            np.round(np.clip(rng.normal(0.6, 0.3, size=120), 0, 1), 1)
        )
        detector = ARModelErrorDetector(
            threshold=0.1, windower=CountWindower(size=40, step=20)
        )
        report = detector.detect(stream)
        mids, values = report.statistic_series()
        assert len(mids) == len(values) == len(report.verdicts)

    def test_empty_report_properties(self):
        report = SuspicionReport(stream=make_stream([]))
        assert report.flagged_rating_ids == frozenset()
        assert report.flagged_rater_ids == frozenset()
        assert report.suspicious_verdicts == []


class TestSystemWithWindowedFilter:
    def test_windowed_filter_composes_with_system(self, rng):
        system = TrustEnhancedRatingSystem(
            rating_filter=WindowedFilter(
                ZScoreFilter(k=2.0), window_length=5.0, origin=0.0
            ),
        )
        system.register_product(Product(product_id=0, quality=0.6))
        for rid in range(60):
            system.register_rater(
                RaterProfile(rater_id=rid, rater_class=RaterClass.RELIABLE)
            )
        ratings = [
            make_rating(i, float(np.clip(np.round(rng.normal(0.6, 0.1), 1), 0, 1)),
                        float(i) * 0.2)
            for i in range(50)
        ]
        ratings.append(make_rating(999, 0.0, 2.0, rater_id=59))
        system.ingest(ratings)
        report = system.process_interval(0.0, 10.0)
        assert report.n_filtered >= 1
        assert system.trust_manager.trust(59) < 0.5


class TestOnlineDetectorMethods:
    @pytest.mark.parametrize("method", ["autocorrelation", "burg"])
    def test_alternative_estimators(self, method, rng):
        detector = OnlineARDetector(
            window_size=30, stride=5, threshold=0.1, method=method
        )
        values = np.round(np.clip(rng.normal(0.6, 0.3, size=60), 0, 1), 1)
        detector.observe_many(make_stream(values))
        assert detector.verdicts

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            OnlineARDetector(method="magic")

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            OnlineARDetector(scale=0.0)


class TestStrategyValidation:
    def test_negative_variance_rejected(self):
        with pytest.raises(ConfigurationError):
            CollusionStrategy(
                name="x", bias_shift=0.1, bad_variance=-1.0,
                detectable_by_filters=True,
            )


class TestReportingDepth:
    def test_cycle_free_deep_nesting_degrades_to_repr(self):
        nested: object = 1
        for _ in range(25):
            nested = {"level": nested}
        out = to_jsonable(nested)
        # Somewhere below depth 20 the structure degrades to a string.
        probe = out
        depth = 0
        while isinstance(probe, dict):
            probe = probe["level"]
            depth += 1
        assert isinstance(probe, str)
        assert depth <= 21


class TestExperimentOverrides:
    def test_fig5_custom_window(self):
        from repro.experiments import fig5_netflix

        result = fig5_netflix.run(seed=1, window_size=40, window_step=20, order=2)
        assert result.errors_original.size > 0

    def test_marketplace_detection_compact_config(self):
        from repro.experiments import marketplace_detection
        from repro.simulation.marketplace import MarketplaceConfig

        config = MarketplaceConfig(
            n_reliable=120, n_careless=60, n_pc=60, n_months=2, p_rate=0.04
        )
        result = marketplace_detection.run(seed=0, config=config)
        assert len(result.monthly_rating_detection) == 2
        # With 2 months the "month 6" snapshot clamps to the last month.
        assert result.detection_month6.detection_rate >= 0.0

    def test_cli_bias_flag(self, capsys):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "fig10-fig12", "--bias", "0.2"]
        )
        assert args.bias == 0.2
