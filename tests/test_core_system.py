"""Tests for the integrated Fig. 1 system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.system import TrustEnhancedRatingSystem
from repro.detectors.ar_detector import ARModelErrorDetector
from repro.errors import EmptyWindowError
from repro.filters.robust import ZScoreFilter
from repro.aggregation.methods import SimpleAverage
from repro.ratings.models import Product, RaterClass, RaterProfile, Rating
from repro.signal.windows import CountWindower
from tests.conftest import make_rating


def build_system(**kwargs) -> TrustEnhancedRatingSystem:
    system = TrustEnhancedRatingSystem(**kwargs)
    system.register_product(Product(product_id=0, quality=0.7))
    for rid in range(200):
        system.register_rater(
            RaterProfile(rater_id=rid, rater_class=RaterClass.RELIABLE)
        )
    return system


def honest_ratings(rng, n=60, start=0.0, span=10.0, rid_start=0):
    times = np.sort(rng.uniform(start, start + span, size=n))
    return [
        make_rating(
            rid_start + i,
            float(np.clip(np.round(rng.normal(0.7, 0.2), 1), 0, 1)),
            float(t),
            rater_id=rid_start + i,
        )
        for i, t in enumerate(times)
    ]


class TestIngestAndProcess:
    def test_ingest_counts(self, rng):
        system = build_system()
        assert system.ingest(honest_ratings(rng, n=10)) == 10
        assert system.store.n_ratings == 10

    def test_process_interval_consumes_pending(self, rng):
        system = build_system()
        system.ingest(honest_ratings(rng, n=30))
        report = system.process_interval(0.0, 10.0)
        assert report.n_ratings == 30
        # Second processing of the same span finds nothing new.
        report2 = system.process_interval(0.0, 10.0)
        assert report2.n_ratings == 0

    def test_interval_boundaries_respected(self, rng):
        system = build_system()
        early = honest_ratings(rng, n=10, start=0.0, span=5.0)
        late = honest_ratings(rng, n=10, start=10.0, span=5.0, rid_start=50)
        system.ingest(early + late)
        report = system.process_interval(0.0, 10.0)
        assert report.n_ratings == 10
        report2 = system.process_interval(10.0, 20.0)
        assert report2.n_ratings == 10

    def test_invalid_interval_rejected(self):
        with pytest.raises(EmptyWindowError):
            build_system().process_interval(5.0, 5.0)

    def test_trust_updated_each_interval(self, rng):
        system = build_system()
        system.ingest(honest_ratings(rng, n=30))
        system.process_interval(0.0, 10.0)
        assert system.trust_manager.n_updates == 1
        # Honest raters' trust rises above the prior.
        trusts = [system.trust_manager.trust(r) for r in range(30)]
        assert np.mean(trusts) > 0.5

    def test_run_splits_into_intervals(self, rng):
        system = build_system()
        system.ingest(honest_ratings(rng, n=30, span=30.0))
        reports = system.run(0.0, 30.0, interval=10.0)
        assert len(reports) == 3
        assert sum(r.n_ratings for r in reports) == 30

    def test_run_rejects_bad_interval(self):
        with pytest.raises(EmptyWindowError):
            build_system().run(0.0, 10.0, interval=0.0)


class TestFilterIntegration:
    def test_filtered_ratings_excluded_from_aggregate(self, rng):
        system = build_system(
            rating_filter=ZScoreFilter(k=2.0),
            detector=ARModelErrorDetector(
                threshold=0.1, windower=CountWindower(size=50, step=25)
            ),
        )
        ratings = honest_ratings(rng, n=30)
        outlier = make_rating(900, 0.0, 5.0, rater_id=150)
        system.ingest(ratings + [outlier])
        report = system.process_interval(0.0, 10.0)
        assert report.n_filtered >= 1
        accepted = system.accepted_stream(0)
        assert 900 not in {r.rating_id for r in accepted}

    def test_filtered_rater_trust_drops(self, rng):
        system = build_system(rating_filter=ZScoreFilter(k=2.0))
        ratings = honest_ratings(rng, n=30)
        outlier = make_rating(900, 0.0, 5.0, rater_id=150)
        system.ingest(ratings + [outlier])
        system.process_interval(0.0, 10.0)
        assert system.trust_manager.trust(150) < 0.5


class TestAggregation:
    def test_aggregate_close_to_quality(self, rng):
        system = build_system()
        system.ingest(honest_ratings(rng, n=100))
        system.process_interval(0.0, 10.0)
        assert system.aggregated_rating(0) == pytest.approx(0.7, abs=0.07)

    def test_aggregator_override(self, rng):
        system = build_system()
        system.ingest(honest_ratings(rng, n=50))
        system.process_interval(0.0, 10.0)
        default = system.aggregated_rating(0)
        simple = system.aggregated_rating(0, aggregator=SimpleAverage())
        assert abs(default - simple) < 0.1

    def test_no_ratings_rejected(self):
        with pytest.raises(EmptyWindowError):
            build_system().aggregated_rating(0)

    def test_aggregated_ratings_skips_empty_products(self, rng):
        system = build_system()
        system.register_product(Product(product_id=1, quality=0.4))
        system.ingest(honest_ratings(rng, n=30))
        system.process_interval(0.0, 10.0)
        results = system.aggregated_ratings()
        assert 0 in results
        assert 1 not in results


class TestIntervalReport:
    def test_report_structure(self, rng):
        system = build_system()
        system.ingest(honest_ratings(rng, n=30))
        report = system.process_interval(0.0, 10.0)
        assert 0 in report.products
        product_report = report.products[0]
        assert product_report.n_ratings == 30
        assert report.trust_after
        assert isinstance(report.detected_malicious, list)
        assert isinstance(report.flagged_rating_ids, set)

    def test_reports_accumulate(self, rng):
        system = build_system()
        system.ingest(honest_ratings(rng, n=20, span=20.0))
        system.run(0.0, 20.0, interval=10.0)
        assert len(system.interval_reports) == 2
