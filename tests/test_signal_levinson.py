"""Tests for the Levinson-Durbin recursion and autocorrelation."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.linalg import toeplitz

from repro.errors import SignalModelError
from repro.signal.levinson import autocorrelation_sequence, levinson_durbin


class TestAutocorrelation:
    def test_zero_lag_is_mean_square(self, rng):
        x = rng.normal(size=200)
        r = autocorrelation_sequence(x, max_lag=5)
        assert r[0] == pytest.approx(np.mean(x**2))

    def test_biased_estimator_divides_by_n(self):
        x = np.array([1.0, 1.0, 1.0, 1.0])
        r = autocorrelation_sequence(x, max_lag=2)
        assert r[1] == pytest.approx(3.0 / 4.0)
        assert r[2] == pytest.approx(2.0 / 4.0)

    def test_lag_too_large_raises(self):
        with pytest.raises(SignalModelError):
            autocorrelation_sequence(np.ones(5), max_lag=5)

    def test_white_noise_decorrelates(self, rng):
        x = rng.normal(size=20000)
        r = autocorrelation_sequence(x, max_lag=3)
        assert abs(r[1] / r[0]) < 0.05
        assert abs(r[2] / r[0]) < 0.05


class TestLevinsonDurbin:
    def test_matches_direct_toeplitz_solve(self, rng):
        x = rng.normal(size=1000)
        x = np.convolve(x, [1.0, 0.6, 0.3], mode="full")[: x.size]
        r = autocorrelation_sequence(x, max_lag=4)
        result = levinson_durbin(r, order=4)
        direct = np.linalg.solve(toeplitz(r[:4]), -r[1:5])
        np.testing.assert_allclose(result.coefficients[1:], direct, atol=1e-8)

    def test_error_decreases_with_order(self, rng):
        x = rng.normal(size=2000)
        x = np.convolve(x, [1.0, 0.8], mode="full")[: x.size]
        r = autocorrelation_sequence(x, max_lag=6)
        result = levinson_durbin(r, order=6)
        diffs = np.diff(result.error_per_order)
        assert np.all(diffs <= 1e-12)

    def test_reflection_coefficients_bounded(self, rng):
        x = rng.normal(size=500)
        r = autocorrelation_sequence(x, max_lag=5)
        result = levinson_durbin(r, order=5)
        assert np.all(np.abs(result.reflection) <= 1.0)

    def test_known_ar1(self):
        # For AR(1) with coefficient a, r[k] = r[0] * (-a)^k.
        a = -0.5
        r = np.array([1.0, -a, a * a])
        result = levinson_durbin(r, order=1)
        assert result.coefficients[1] == pytest.approx(a)
        assert result.error == pytest.approx(1.0 - a * a)

    def test_short_sequence_raises(self):
        with pytest.raises(SignalModelError):
            levinson_durbin(np.array([1.0, 0.5]), order=2)

    def test_nonpositive_r0_raises(self):
        with pytest.raises(SignalModelError):
            levinson_durbin(np.array([0.0, 0.0, 0.0]), order=2)

    def test_order_below_one_raises(self):
        with pytest.raises(SignalModelError):
            levinson_durbin(np.array([1.0, 0.5]), order=0)

    def test_perfectly_predictable_raises(self):
        # The analytic autocorrelation of a pure cosine is exactly
        # predictable at order 2, so the order-3 recursion hits a zero
        # prediction error.
        r = np.cos(0.3 * np.arange(5))
        with pytest.raises(SignalModelError):
            levinson_durbin(r, order=3)

    def test_cosine_nearly_predictable_at_order_two(self):
        r = np.cos(0.3 * np.arange(3))
        result = levinson_durbin(r, order=2)
        assert result.error == pytest.approx(0.0, abs=1e-12)
