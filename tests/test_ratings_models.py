"""Tests for the core record types."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.ratings.models import (
    Product,
    RaterClass,
    RaterProfile,
    Rating,
    fresh_rating_id,
)
from repro.ratings.quality import LinearRampQuality


class TestRating:
    def test_valid_construction(self):
        rating = Rating(rating_id=1, rater_id=2, product_id=3, value=0.5, time=1.0)
        assert rating.value == 0.5
        assert not rating.unfair

    def test_value_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            Rating(rating_id=1, rater_id=1, product_id=1, value=1.2, time=0.0)

    def test_value_below_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            Rating(rating_id=1, rater_id=1, product_id=1, value=-0.1, time=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            Rating(rating_id=1, rater_id=1, product_id=1, value=0.5, time=-1.0)

    def test_boundary_values_accepted(self):
        for v in (0.0, 1.0):
            Rating(rating_id=1, rater_id=1, product_id=1, value=v, time=0.0)

    def test_frozen(self):
        rating = Rating(rating_id=1, rater_id=1, product_id=1, value=0.5, time=0.0)
        with pytest.raises(AttributeError):
            rating.value = 0.9


class TestFreshRatingId:
    def test_ids_are_unique_and_increasing(self):
        a, b, c = fresh_rating_id(), fresh_rating_id(), fresh_rating_id()
        assert a < b < c


class TestRaterClass:
    def test_honest_classes(self):
        assert RaterClass.RELIABLE.is_honest
        assert RaterClass.CARELESS.is_honest

    def test_dishonest_classes(self):
        assert not RaterClass.TYPE1_COLLABORATIVE.is_honest
        assert not RaterClass.TYPE2_COLLABORATIVE.is_honest
        assert not RaterClass.POTENTIAL_COLLABORATIVE.is_honest

    def test_profile_delegates(self):
        profile = RaterProfile(rater_id=1, rater_class=RaterClass.CARELESS)
        assert profile.is_honest


class TestProduct:
    def test_constant_quality(self):
        product = Product(product_id=1, quality=0.6)
        assert product.quality_at(0.0) == 0.6
        assert product.quality_at(100.0) == 0.6

    def test_callable_quality(self):
        ramp = LinearRampQuality(0.7, 0.8, 0.0, 60.0)
        product = Product(product_id=1, quality=ramp)
        assert product.quality_at(30.0) == pytest.approx(0.75)

    def test_quality_clipped(self):
        product = Product(product_id=1, quality=lambda t: 1.5)
        assert product.quality_at(0.0) == 1.0

    def test_availability_window(self):
        product = Product(
            product_id=1, quality=0.5, available_from=10.0, available_until=20.0
        )
        assert not product.is_available(5.0)
        assert product.is_available(10.0)
        assert product.is_available(19.9)
        assert not product.is_available(20.0)

    def test_forever_available(self):
        product = Product(product_id=1, quality=0.5)
        assert product.is_available(1e9)
