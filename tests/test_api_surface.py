"""Meta-tests on the public API surface.

Guards the packaging hygiene a downstream user depends on: every name
in an ``__all__`` is importable, every public item carries a docstring,
the top-level package re-exports what the README promises, and the
experiment registry stays in sync with the CLI.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.signal",
    "repro.ratings",
    "repro.raters",
    "repro.attacks",
    "repro.filters",
    "repro.detectors",
    "repro.trust",
    "repro.aggregation",
    "repro.core",
    "repro.simulation",
    "repro.data",
    "repro.evaluation",
    "repro.experiments",
    "repro.presets",
    "repro.reporting",
    "repro.service",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_exports_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(name)
    assert not missing, f"{module_name}: missing docstrings on {missing}"


def test_every_submodule_has_a_module_docstring():
    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ or "").strip():
            missing.append(info.name)
    assert not missing, f"module docstrings missing: {missing}"


def test_readme_promises_importable():
    # The names the README's quickstart and architecture table lean on.
    from repro import (  # noqa: F401
        ARModelErrorDetector,
        IllustrativeConfig,
        MarketplaceConfig,
        OnlineARDetector,
        TrustEnhancedRatingSystem,
        generate_illustrative,
        generate_marketplace,
        run_marketplace,
    )


def test_registry_names_are_cli_safe():
    from repro.experiments import REGISTRY

    for name in REGISTRY:
        assert name == name.lower()
        assert " " not in name

    # Every registry entry is runnable through the parser.
    from repro.cli import build_parser

    parser = build_parser()
    for name in REGISTRY:
        args = parser.parse_args(["run", name])
        assert args.experiment == name


def test_version_consistency():
    import tomllib
    from pathlib import Path

    pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
    if not pyproject.exists():  # installed without the source tree
        pytest.skip("source tree not available")
    data = tomllib.loads(pyproject.read_text())
    assert data["project"]["version"] == repro.__version__
