"""Meta-tests on the public API surface.

Guards the packaging hygiene a downstream user depends on: every name
in an ``__all__`` is importable, every public item carries a docstring,
the top-level package re-exports what the README promises, and the
experiment registry stays in sync with the CLI.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.signal",
    "repro.ratings",
    "repro.raters",
    "repro.attacks",
    "repro.filters",
    "repro.detectors",
    "repro.trust",
    "repro.aggregation",
    "repro.core",
    "repro.simulation",
    "repro.data",
    "repro.evaluation",
    "repro.experiments",
    "repro.presets",
    "repro.reporting",
    "repro.service",
    "repro.service.cluster",
    "repro.service.ensemble",
    "repro.devtools",
    "repro.devtools.analysis",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_exports_have_docstrings(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                missing.append(name)
    assert not missing, f"{module_name}: missing docstrings on {missing}"


def test_every_submodule_has_a_module_docstring():
    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ or "").strip():
            missing.append(info.name)
    assert not missing, f"module docstrings missing: {missing}"


def test_readme_promises_importable():
    # The names the README's quickstart and architecture table lean on.
    from repro import (  # noqa: F401
        ARModelErrorDetector,
        IllustrativeConfig,
        MarketplaceConfig,
        OnlineARDetector,
        TrustEnhancedRatingSystem,
        generate_illustrative,
        generate_marketplace,
        run_marketplace,
    )


def test_registry_names_are_cli_safe():
    from repro.experiments import REGISTRY

    for name in REGISTRY:
        assert name == name.lower()
        assert " " not in name

    # Every registry entry is runnable through the parser.
    from repro.cli import build_parser

    parser = build_parser()
    for name in REGISTRY:
        args = parser.parse_args(["run", name])
        assert args.experiment == name


def test_version_consistency():
    import tomllib
    from pathlib import Path

    pyproject = Path(repro.__file__).resolve().parents[2] / "pyproject.toml"
    if not pyproject.exists():  # installed without the source tree
        pytest.skip("source tree not available")
    data = tomllib.loads(pyproject.read_text())
    assert data["project"]["version"] == repro.__version__


# The exact public surface, module by module.  Adding an export
# without updating this table (and docs/API_GUIDE.md) is flagged by
# `repro lint` rule AD01; this test keeps the table honest in the
# other direction.
EXPECTED_EXPORTS = {
    "repro": [
        "ARModel",
        "ARModelErrorDetector",
        "BetaFunctionAggregator",
        "BetaQuantileFilter",
        "CamouflageCampaign",
        "ClusteringDetector",
        "CollusionCampaign",
        "DINOSAUR_PLANET",
        "DutyCycleCampaign",
        "ELEVEN_LEVEL",
        "EndorsementDetector",
        "EntropyChangeDetector",
        "FIVE_STAR",
        "IQRFilter",
        "IllustrativeConfig",
        "MarketplaceConfig",
        "MetricsRegistry",
        "ModifiedWeightedAverage",
        "NetflixTraceConfig",
        "NullFilter",
        "OnlineARDetector",
        "PipelineConfig",
        "PlainWeightedAverage",
        "Product",
        "RampCampaign",
        "RaterClass",
        "RaterProfile",
        "Rating",
        "RatingEngine",
        "RatingScale",
        "RatingStore",
        "RatingStream",
        "ReproError",
        "ServiceConfig",
        "SimpleAverage",
        "SubmitResult",
        "SunTrustModelAggregator",
        "SuspicionReport",
        "TEN_LEVEL",
        "TrustEnhancedRatingSystem",
        "TrustManager",
        "TrustManagerConfig",
        "TrustRecord",
        "WriteAheadLog",
        "ZScoreFilter",
        "__version__",
        "arburg",
        "arcov",
        "aryule",
        "beta_trust",
        "estimate_trace_statistics",
        "generate_illustrative",
        "generate_marketplace",
        "generate_netflix_trace",
        "inject_campaign",
        "monte_carlo",
        "rater_detection",
        "rating_detection",
        "required_colluders",
        "run_marketplace",
    ],
    "repro.aggregation": [
        "Aggregator",
        "BetaFunctionAggregator",
        "MedianAggregator",
        "ModifiedWeightedAverage",
        "PAPER_METHODS",
        "PlainWeightedAverage",
        "SimpleAverage",
        "SunTrustModelAggregator",
        "ThresholdedAverage",
        "TrimmedMeanAggregator",
        "as_arrays",
    ],
    "repro.attacks": [
        "AdaptiveCampaign",
        "CamouflageCampaign",
        "CollusionCampaign",
        "CollusionStrategy",
        "DutyCycleCampaign",
        "LARGE_BIAS",
        "MODERATE_BIAS",
        "RampCampaign",
        "TraceStatistics",
        "estimate_trace_statistics",
        "inject_campaign",
        "required_colluders",
    ],
    "repro.core": [
        "IntervalReport",
        "ProductIntervalReport",
        "TrustEnhancedRatingSystem",
    ],
    "repro.data": [
        "DINOSAUR_PLANET",
        "NetflixTraceConfig",
        "generate_netflix_trace",
    ],
    "repro.detectors": [
        "ARModelErrorDetector",
        "ClusteringDetector",
        "CollusionGroups",
        "CusumDetector",
        "EndorsementDetector",
        "EntropyChangeDetector",
        "OnlineARDetector",
        "SuspicionDetector",
        "SuspicionReport",
        "VarianceRatioDetector",
        "WindowVerdict",
        "build_cosuspicion_graph",
        "detect_collusion_groups",
        "endorsement_quality",
        "extract_groups",
        "two_means_1d",
    ],
    "repro.devtools": [
        "Baseline",
        "BaselineEntry",
        "Finding",
        "LintResult",
        "Rule",
        "SourceFile",
        "all_rules",
        "run_lint",
    ],
    "repro.devtools.analysis": [
        "AnalysisCache",
        "AnalysisModel",
        "ContractRegistry",
        "EffectEvent",
        "EffectRegistry",
        "FunctionContract",
        "FunctionEffects",
        "Interval",
        "ModuleInfo",
        "default_effect_registry",
        "default_registry",
        "effect_summaries",
        "get_analysis",
    ],
    "repro.evaluation": [
        "AggregationErrors",
        "ConfusionCounts",
        "MonteCarloResult",
        "RaterDetectionStats",
        "RocCurve",
        "RocPoint",
        "Summary",
        "aggregation_errors",
        "any_suspicious",
        "calibrate_threshold",
        "interval_detected",
        "line_chart",
        "monte_carlo",
        "operating_point",
        "rater_detection",
        "rating_detection",
        "roc_from_scores",
        "sparkline",
        "summarize",
        "window_confusion",
    ],
    "repro.experiments": [
        "REGISTRY",
        "adaptive_attacks",
        "baselines",
        "collusion_groups",
        "detection500",
        "ensemble_zoo",
        "fig2_fig3",
        "fig4",
        "fig5_netflix",
        "forgetting",
        "individual_unfair",
        "marketplace_aggregation",
        "marketplace_detection",
        "sensitivity",
        "table1",
        "vouching",
        "whitewashing",
    ],
    "repro.filters": [
        "BetaQuantileFilter",
        "FilterResult",
        "IQRFilter",
        "NullFilter",
        "RatingFilter",
        "WindowedFilter",
        "ZScoreFilter",
    ],
    "repro.raters": [
        "CarelessRater",
        "DispositionalRater",
        "GaussianOpinionMixin",
        "HonestRater",
        "PotentialCollaborativeRater",
        "RandomRater",
        "Rater",
        "ReliableRater",
        "Type1CollaborativeRater",
        "Type2CollaborativeRater",
    ],
    "repro.ratings": [
        "ConstantQuality",
        "ELEVEN_LEVEL",
        "FIVE_STAR",
        "InMemoryBackend",
        "LinearRampQuality",
        "PiecewiseQuality",
        "Product",
        "RaterClass",
        "RaterProfile",
        "Rating",
        "RatingScale",
        "RatingStore",
        "RatingStoreBackend",
        "RatingStream",
        "TEN_LEVEL",
        "TieredRatingBackend",
        "fresh_rating_id",
        "nonhomogeneous_arrival_times",
        "poisson_arrival_times",
        "read_csv",
        "read_jsonl",
        "write_csv",
        "write_jsonl",
    ],
    "repro.service": [
        "Counter",
        "Gauge",
        "Histogram",
        "MetricsRegistry",
        "OnlineSuspicionSource",
        "RatingEngine",
        "RatingServiceServer",
        "ServiceConfig",
        "SubmitResult",
        "WriteAheadLog",
        "latest_snapshot",
        "list_segments",
        "make_server",
        "prune_snapshots",
        "read_snapshot",
        "replay_wal",
        "serve",
        "wal_exists",
        "write_snapshot",
    ],
    "repro.service.cluster": [
        "ClusterCoordinator",
        "ConsistentHashRing",
        "compute_watermark",
        "recv_msg",
        "send_msg",
        "worker_main",
    ],
    "repro.service.ensemble": [
        "ARSuspicionSource",
        "COMBINERS",
        "CoRatingGraphSource",
        "IterativeFilterSource",
        "OnlineSuspicionSource",
        "SOURCE_NAMES",
        "build_sources",
        "combine_max",
        "combine_weighted_mean",
        "unit_suspicion",
    ],
    "repro.signal": [
        "ARModel",
        "ARSpectrum",
        "AR_METHODS",
        "CountWindower",
        "LevinsonResult",
        "LjungBoxResult",
        "SlidingCovarianceFitter",
        "TimeWindower",
        "Window",
        "ar_power_spectrum",
        "arburg",
        "arcov",
        "aryule",
        "autocorrelation_sequence",
        "fit_windows",
        "levinson_durbin",
        "ljung_box",
        "moving_average",
        "normalized_model_error",
        "remove_linear_trend",
        "remove_mean",
        "sample_autocorrelation",
        "spectral_flatness",
    ],
    "repro.simulation": [
        "AttackSchedule",
        "IllustrativeConfig",
        "IllustrativeTrace",
        "MarketplaceConfig",
        "MarketplaceRun",
        "MarketplaceWorld",
        "PipelineConfig",
        "VouchingConfig",
        "VouchingNetwork",
        "build_vouching_network",
        "evaluate_network",
        "generate_illustrative",
        "generate_marketplace",
        "run_marketplace",
    ],
    "repro.trust": [
        "BehaviourProfile",
        "ObservationBuffer",
        "RaterObservation",
        "RecommendationBuffer",
        "RecommendationGraph",
        "RecordMaintenance",
        "SYSTEM_NODE",
        "TrustManager",
        "TrustManagerConfig",
        "TrustRecord",
        "asymptotic_trust",
        "beta_trust",
        "binary_entropy",
        "concatenate",
        "detection_interval",
        "entropy_trust",
        "entropy_trust_inverse",
        "expected_trust_trajectory",
        "multipath",
    ],
}


@pytest.mark.parametrize("module_name", sorted(EXPECTED_EXPORTS))
def test_export_surface_is_exactly_declared(module_name):
    module = importlib.import_module(module_name)
    actual = sorted(getattr(module, "__all__", []))
    assert actual == EXPECTED_EXPORTS[module_name], (
        f"{module_name}.__all__ drifted from EXPECTED_EXPORTS; "
        "update this table and docs/API_GUIDE.md together"
    )
