"""Test-suite package (shared fixtures live in conftest.py)."""
