"""Tests for RatingStream and RatingStore."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import UnknownProductError, UnknownRaterError
from repro.ratings.models import Product, RaterClass, RaterProfile
from repro.ratings.store import RatingStore
from repro.ratings.stream import RatingStream
from tests.conftest import make_rating, make_stream


class TestRatingStream:
    def test_from_ratings_sorts_by_time(self):
        ratings = [
            make_rating(0, 0.5, time=3.0),
            make_rating(1, 0.6, time=1.0),
            make_rating(2, 0.7, time=2.0),
        ]
        stream = RatingStream.from_ratings(ratings)
        assert stream.times.tolist() == [1.0, 2.0, 3.0]

    def test_ties_break_by_rating_id(self):
        ratings = [make_rating(5, 0.5, time=1.0), make_rating(2, 0.6, time=1.0)]
        stream = RatingStream.from_ratings(ratings)
        assert [r.rating_id for r in stream] == [2, 5]

    def test_parallel_arrays(self):
        stream = make_stream([0.1, 0.2, 0.3])
        np.testing.assert_allclose(stream.values, [0.1, 0.2, 0.3])
        assert stream.rater_ids.tolist() == [0, 1, 2]
        assert not stream.unfair_flags.any()

    def test_between_half_open(self):
        stream = make_stream([0.5] * 5)  # times 0..4
        sub = stream.between(1.0, 3.0)
        assert sub.times.tolist() == [1.0, 2.0]

    def test_by_rater(self):
        ratings = [make_rating(i, 0.5, time=i, rater_id=i % 2) for i in range(6)]
        stream = RatingStream.from_ratings(ratings)
        assert len(stream.by_rater(0)) == 3

    def test_without(self):
        stream = make_stream([0.5, 0.6, 0.7])
        remaining = stream.without([1])
        assert [r.rating_id for r in remaining] == [0, 2]

    def test_select(self):
        stream = make_stream([0.5, 0.6, 0.7, 0.8])
        sub = stream.select([2, 0])
        assert [r.rating_id for r in sub] == [0, 2]

    def test_merge_stays_sorted(self):
        a = make_stream([0.5, 0.6], start_time=0.0, spacing=2.0)  # 0, 2
        b = make_stream([0.7], start_time=1.0)
        b = RatingStream.from_ratings(
            [make_rating(99, 0.7, time=1.0)]
        )
        merged = a.merge(b)
        assert merged.times.tolist() == [0.0, 1.0, 2.0]

    def test_fair_unfair_partition(self):
        ratings = [
            make_rating(0, 0.5, time=0.0),
            make_rating(1, 0.9, time=1.0, unfair=True),
        ]
        stream = RatingStream.from_ratings(ratings)
        assert len(stream.fair_only()) == 1
        assert len(stream.unfair_only()) == 1
        assert stream.unfair_only()[0].rating_id == 1

    def test_mean(self):
        assert make_stream([0.2, 0.4]).mean() == pytest.approx(0.3)

    def test_empty_mean_is_zero(self):
        assert RatingStream().mean() == 0.0

    def test_len_iter_getitem(self):
        stream = make_stream([0.1, 0.2])
        assert len(stream) == 2
        assert [r.value for r in stream] == [0.1, 0.2]
        assert stream[1].value == 0.2


class TestRatingStore:
    @pytest.fixture
    def store(self):
        store = RatingStore()
        store.add_product(Product(product_id=1, quality=0.5))
        store.add_product(Product(product_id=2, quality=0.7, dishonest=True))
        for rid in range(3):
            store.add_rater(
                RaterProfile(rater_id=rid, rater_class=RaterClass.RELIABLE)
            )
        return store

    def test_rating_requires_registered_product(self, store):
        with pytest.raises(UnknownProductError):
            store.add_rating(make_rating(0, 0.5, time=0.0, product_id=99))

    def test_rating_requires_registered_rater(self, store):
        with pytest.raises(UnknownRaterError):
            store.add_rating(make_rating(0, 0.5, time=0.0, rater_id=99, product_id=1))

    def test_streams_by_product(self, store):
        store.add_rating(make_rating(0, 0.5, time=0.0, rater_id=0, product_id=1))
        store.add_rating(make_rating(1, 0.6, time=1.0, rater_id=1, product_id=2))
        assert len(store.stream(1)) == 1
        assert len(store.stream(2)) == 1
        assert store.n_ratings == 2

    def test_rater_stream_crosses_products(self, store):
        store.add_rating(make_rating(0, 0.5, time=0.0, rater_id=0, product_id=1))
        store.add_rating(make_rating(1, 0.6, time=1.0, rater_id=0, product_id=2))
        assert len(store.rater_stream(0)) == 2

    def test_has_rated(self, store):
        assert not store.has_rated(0, 1)
        store.add_rating(make_rating(0, 0.5, time=0.0, rater_id=0, product_id=1))
        assert store.has_rated(0, 1)
        assert not store.has_rated(0, 2)

    def test_unknown_lookups_raise(self, store):
        with pytest.raises(UnknownProductError):
            store.stream(42)
        with pytest.raises(UnknownRaterError):
            store.rater_stream(42)
        with pytest.raises(UnknownProductError):
            store.product(42)
        with pytest.raises(UnknownRaterError):
            store.rater(42)

    def test_all_ratings_sorted(self, store):
        store.add_rating(make_rating(0, 0.5, time=5.0, rater_id=0, product_id=1))
        store.add_rating(make_rating(1, 0.6, time=1.0, rater_id=1, product_id=2))
        assert store.all_ratings().times.tolist() == [1.0, 5.0]

    def test_raters_by_class(self, store):
        store.add_rater(
            RaterProfile(rater_id=9, rater_class=RaterClass.POTENTIAL_COLLABORATIVE)
        )
        grouped = store.raters_by_class()
        assert grouped[RaterClass.RELIABLE] == [0, 1, 2]
        assert grouped[RaterClass.POTENTIAL_COLLABORATIVE] == [9]

    def test_ids_sorted(self, store):
        assert store.product_ids == [1, 2]
        assert store.rater_ids == [0, 1, 2]
