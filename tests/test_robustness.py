"""Failure-injection and edge-case robustness tests.

The pipeline must degrade gracefully, not crash or silently
misbehave, under degenerate inputs: empty intervals, products nobody
rated, unanimous ratings, duplicate submissions, single raters
dominating a product, and extreme configurations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.methods import PAPER_METHODS
from repro.core.system import TrustEnhancedRatingSystem
from repro.detectors.ar_detector import ARModelErrorDetector
from repro.errors import ReproError
from repro.filters.beta_quantile import BetaQuantileFilter
from repro.ratings.models import Product, RaterClass, RaterProfile
from repro.ratings.stream import RatingStream
from repro.signal.windows import CountWindower
from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace
from repro.simulation.pipeline import PipelineConfig, run_marketplace
from tests.conftest import make_rating, make_stream


def fresh_system():
    system = TrustEnhancedRatingSystem(
        detector=ARModelErrorDetector(
            threshold=0.1, windower=CountWindower(size=20, step=10)
        )
    )
    system.register_product(Product(product_id=0, quality=0.6))
    for rid in range(50):
        system.register_rater(
            RaterProfile(rater_id=rid, rater_class=RaterClass.RELIABLE)
        )
    return system


class TestEmptyAndSparse:
    def test_empty_interval_is_fine(self):
        system = fresh_system()
        report = system.process_interval(0.0, 10.0)
        assert report.n_ratings == 0
        assert report.trust_after  # registered raters still snapshot

    def test_single_rating_interval(self):
        system = fresh_system()
        system.ingest([make_rating(0, 0.6, 1.0)])
        report = system.process_interval(0.0, 10.0)
        assert report.n_ratings == 1
        assert report.n_filtered == 0  # below every min-count guard

    def test_product_with_no_ratings_skipped_in_aggregates(self):
        system = fresh_system()
        system.register_product(Product(product_id=9, quality=0.3))
        system.ingest([make_rating(i, 0.6, float(i) * 0.1) for i in range(10)])
        system.process_interval(0.0, 10.0)
        aggregates = system.aggregated_ratings()
        assert 9 not in aggregates

    def test_marketplace_with_zero_pc_raters(self):
        config = MarketplaceConfig(
            n_reliable=60, n_careless=20, n_pc=0, n_months=1, p_rate=0.04
        )
        world = generate_marketplace(config, np.random.default_rng(0))
        run = run_marketplace(world, PipelineConfig())
        assert len(run.monthly_trust) == 1
        assert not world.store.all_ratings().unfair_flags.any()


class TestDegenerateValues:
    def test_unanimous_ratings_survive_everything(self):
        system = fresh_system()
        system.ingest([make_rating(i, 0.6, float(i) * 0.2) for i in range(40)])
        report = system.process_interval(0.0, 10.0)
        # Constant window: perfectly predictable -> legitimately
        # suspicious (a unanimous block of identical ratings IS what a
        # collusion campaign looks like), but nothing crashes and the
        # aggregate is exact.
        assert system.aggregated_rating(0) == pytest.approx(0.6)

    def test_all_zero_ratings(self):
        stream = make_stream([0.0] * 30)
        result = BetaQuantileFilter().filter(stream)
        assert result.n_removed == 0
        detector = ARModelErrorDetector(
            threshold=0.1, windower=CountWindower(size=20, step=10)
        )
        report = detector.detect(stream)  # no crash on zero energy
        assert report.verdicts

    def test_two_point_mass_distribution(self):
        values = [0.1, 1.0] * 20
        stream = make_stream(values)
        result = BetaQuantileFilter(sensitivity=0.1).filter(stream)
        assert len(result.kept) + len(result.removed) == 40

    def test_aggregators_on_extreme_trusts(self):
        values = [0.3, 0.9]
        for cls in PAPER_METHODS.values():
            result = cls().aggregate(values, [0.0, 1.0])
            assert 0.0 <= result <= 1.0


class TestDuplicatesAndOrdering:
    def test_same_rater_many_ratings_one_product(self):
        # The store allows it (re-reviews); the pipeline must not choke.
        system = fresh_system()
        system.ingest(
            [
                make_rating(i, 0.5 + 0.01 * (i % 3), float(i) * 0.3, rater_id=7)
                for i in range(30)
            ]
        )
        report = system.process_interval(0.0, 10.0)
        assert report.n_ratings == 30
        assert 0.0 < system.trust_manager.trust(7) < 1.0

    def test_identical_timestamps(self):
        system = fresh_system()
        system.ingest([make_rating(i, 0.6, 5.0) for i in range(25)])
        report = system.process_interval(0.0, 10.0)
        assert report.n_ratings == 25

    def test_out_of_order_ingestion_is_sorted(self):
        system = fresh_system()
        ratings = [make_rating(i, 0.6, float(10 - i)) for i in range(10)]
        system.ingest(ratings)
        system.process_interval(0.0, 11.0)
        stream = system.store.stream(0)
        assert np.all(np.diff(stream.times) >= 0)


class TestExtremeConfigurations:
    def test_tiny_windows_yield_no_verdicts_not_garbage(self):
        detector = ARModelErrorDetector(
            order=4, threshold=0.1, windower=CountWindower(size=50, step=10)
        )
        report = detector.detect(make_stream([0.5, 0.7, 0.3]))
        assert report.verdicts == []
        assert report.rater_suspicion == {}

    def test_high_order_with_small_min_window_guard(self):
        detector = ARModelErrorDetector(
            order=10, threshold=0.1, windower=CountWindower(size=25, step=5)
        )
        stream = make_stream(list(np.linspace(0.2, 0.8, 40)))
        report = detector.detect(stream)  # 25 > 2*10 allows fitting
        assert all(0.0 <= v.statistic <= 1.0 for v in report.verdicts)

    def test_errors_all_derive_from_repro_error(self):
        system = fresh_system()
        with pytest.raises(ReproError):
            system.aggregated_rating(12345)  # unknown product
        with pytest.raises(ReproError):
            system.process_interval(5.0, 5.0)

    def test_interval_processing_is_idempotent_for_trust(self):
        system = fresh_system()
        system.ingest([make_rating(i, 0.6, float(i) * 0.2) for i in range(20)])
        system.process_interval(0.0, 10.0)
        trust_once = dict(system.trust_manager.trust_table())
        # Re-processing the same (now empty) interval leaves trust alone.
        system.process_interval(0.0, 10.0)
        assert system.trust_manager.trust_table() == trust_once
