"""Behavioural-semantics tests for the marketplace generator.

The Section IV prose makes quantitative claims about rater behaviour
("the potential collaborative raters are 6 times more likely to rate a
dishonest product"); these tests verify the generator realizes them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace


CONFIG = MarketplaceConfig(
    n_reliable=150, n_careless=50, n_pc=100, n_months=4, p_rate=0.02, a1=6.0, a2=0.5
)


@pytest.fixture(scope="module")
def world():
    return generate_marketplace(CONFIG, np.random.default_rng(21))


class TestParticipationRates:
    def test_recruited_pc_concentrate_on_the_campaign(self, world):
        # Recruited PC raters rate the dishonest product during the
        # attack window at a1 * p_rate -- far above the honest rate.
        hits = 0
        recruited_total = 0
        for schedule in world.schedules:
            stream = world.store.stream(schedule.product_id)
            raters_on_product = set(stream.rater_ids.tolist())
            recruited = set(schedule.recruited_rater_ids)
            recruited_total += len(recruited)
            hits += len(recruited & raters_on_product)
        recruited_rate = hits / recruited_total
        # Expected ~1 - (1 - a1*p_rate)^attack_days ~ 0.72.
        assert recruited_rate > 0.5

        # Honest raters hit the same product at the base daily rate over
        # the full month (~1 - 0.98^30 ~ 0.45) -- recruited raters get
        # there in a third of the time.
        honest_hits = 0
        for schedule in world.schedules:
            stream = world.store.stream(schedule.product_id)
            in_attack = stream.between(schedule.attack_start, schedule.attack_end)
            honest_in_attack = {
                r.rater_id
                for r in in_attack
                if world.rater_classes[r.rater_id].is_honest
            }
            honest_hits += len(honest_in_attack)
        honest_attack_rate = honest_hits / (
            (CONFIG.n_reliable + CONFIG.n_careless) * CONFIG.n_months
        )
        assert recruited_rate > 2.0 * honest_attack_rate

    def test_idle_pc_rate_at_reduced_probability(self, world):
        # Non-recruited PC raters browse at a2 * p_rate: their per-
        # product participation is roughly a2 times the honest one.
        honest_count = 0
        idle_pc_count = 0
        recruited_by_month = [
            set(s.recruited_rater_ids) for s in world.schedules
        ]
        for month, schedule in enumerate(world.schedules):
            for pid in range(month * 5, month * 5 + 4):  # honest products
                stream = world.store.stream(pid)
                for rater_id in set(stream.rater_ids.tolist()):
                    cls = world.rater_classes[rater_id]
                    if cls.is_honest:
                        honest_count += 1
                    elif rater_id not in recruited_by_month[month]:
                        idle_pc_count += 1
        n_honest = CONFIG.n_reliable + CONFIG.n_careless
        n_idle_pc = CONFIG.n_pc - len(recruited_by_month[0])
        honest_rate = honest_count / n_honest
        idle_rate = idle_pc_count / max(1, n_idle_pc)
        assert idle_rate < 0.8 * honest_rate

    def test_recruited_pc_do_not_rate_honest_products_that_month(self, world):
        for month, schedule in enumerate(world.schedules):
            recruited = set(schedule.recruited_rater_ids)
            for pid in range(month * 5, month * 5 + 4):
                raters = set(world.store.stream(pid).rater_ids.tolist())
                assert not raters & recruited


class TestScheduleStructure:
    def test_product_blocks_disjoint_across_months(self, world):
        seen = set()
        for month in range(CONFIG.n_months):
            block = set(range(month * 5, (month + 1) * 5))
            assert not block & seen
            seen |= block

    def test_attack_windows_inside_their_months(self, world):
        for schedule in world.schedules:
            month_start = schedule.month * CONFIG.days_per_month
            assert month_start <= schedule.attack_start
            assert schedule.attack_end <= month_start + CONFIG.days_per_month

    def test_recruited_sets_resampled_monthly(self, world):
        sets = [frozenset(s.recruited_rater_ids) for s in world.schedules]
        # With 85 of 100 PC raters drawn each month, identical draws
        # across months would betray a seeding bug.
        assert len(set(sets)) > 1

    def test_honest_classes_never_unfair(self, world):
        for rating in world.store.all_ratings():
            if rating.unfair:
                assert not world.rater_classes[rating.rater_id].is_honest
