"""Tests for rating-trace serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ratings.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.ratings.stream import RatingStream
from tests.conftest import make_rating, make_stream


@pytest.fixture
def stream():
    ratings = [
        make_rating(0, 0.5, 2.0),
        make_rating(1, 0.7, 0.5, rater_id=9, unfair=True),
        make_rating(2, 1.0, 1.25, product_id=3),
    ]
    return RatingStream.from_ratings(ratings)


def assert_streams_equal(a: RatingStream, b: RatingStream) -> None:
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.rating_id == y.rating_id
        assert x.rater_id == y.rater_id
        assert x.product_id == y.product_id
        assert x.value == pytest.approx(y.value)
        assert x.time == pytest.approx(y.time)
        assert x.unfair == y.unfair


class TestCsv:
    def test_round_trip(self, stream, tmp_path):
        path = tmp_path / "trace.csv"
        assert write_csv(stream, path) == 3
        assert_streams_equal(read_csv(path), stream)

    def test_read_sorts_by_time(self, stream, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(stream, path)
        loaded = read_csv(path)
        assert np.all(np.diff(loaded.times) >= 0)

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.csv"
        write_csv(RatingStream(), path)
        assert len(read_csv(path)) == 0

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "rating_id,rater_id,product_id,value,time,unfair\n"
            "1,2,3,not_a_float,0.0,False\n"
        )
        with pytest.raises(ConfigurationError):
            read_csv(path)

    def test_unfair_flag_survives(self, stream, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(stream, path)
        loaded = read_csv(path)
        assert [r.unfair for r in loaded] == [r.unfair for r in stream]


class TestJsonl:
    def test_round_trip(self, stream, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(stream, path) == 3
        assert_streams_equal(read_jsonl(path), stream)

    def test_blank_lines_skipped(self, stream, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(stream, path)
        padded = path.read_text().replace("\n", "\n\n")
        path.write_text(padded)
        assert len(read_jsonl(path)) == 3

    def test_invalid_json_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = (
            '{"rating_id": 1, "rater_id": 2, "product_id": 3, '
            '"value": 0.5, "time": 0.0}'
        )
        path.write_text(good + "\nnot json\n")
        with pytest.raises(ConfigurationError, match=":2:"):
            read_jsonl(path)

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"rating_id": 1, "rater_id": 2}\n')
        with pytest.raises(ConfigurationError):
            read_jsonl(path)

    def test_large_round_trip(self, tmp_path, rng):
        big = make_stream(np.round(rng.uniform(0, 1, size=500), 3))
        path = tmp_path / "big.jsonl"
        write_jsonl(big, path)
        assert_streams_equal(read_jsonl(path), big)
