"""Tests for the repro.devtools static analyzer.

Per-rule fixture tests (positive, negative, suppressed, baselined)
plus the self-check that the committed baseline keeps ``repro lint``
clean on ``src/``.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.devtools import Baseline, BaselineEntry, run_lint
from repro.devtools.cli import main as lint_main
from repro.devtools.core import all_rules

PROJECT_ROOT = Path(repro.__file__).resolve().parents[2]


def lint_snippet(tmp_path, source, name="mod.py", baseline=None, select=None):
    """Write ``source`` into a scratch project and lint it."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    baseline_path = None
    if baseline is not None:
        baseline_path = tmp_path / "baseline.json"
        Baseline(baseline).save(baseline_path)
    return run_lint(
        [path],
        project_root=tmp_path,
        baseline_path=baseline_path,
        select=select,
    )


def rules_of(result, *, active_only=True):
    findings = result.active_findings() if active_only else result.findings
    return [f.rule for f in findings]


LOCK_INVERSION = """
    import threading


    class Pair:
        def __init__(self) -> None:
            self.la = threading.Lock()
            self.lb = threading.Lock()

        def one(self) -> None:
            with self.la:
                with self.lb:
                    pass

        def two(self) -> None:
            with self.lb:
                with self.la:
                    pass
"""


class TestLockOrderRule:
    def test_flags_inversion(self, tmp_path):
        result = lint_snippet(tmp_path, LOCK_INVERSION)
        assert "CC01" in rules_of(result)
        finding = next(f for f in result.findings if f.rule == "CC01")
        assert "Pair.la" in finding.message and "Pair.lb" in finding.message

    def test_flags_inversion_through_a_call(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import threading


            class Pair:
                def __init__(self) -> None:
                    self.la = threading.Lock()
                    self.lb = threading.Lock()

                def grab_a(self) -> None:
                    with self.la:
                        pass

                def one(self) -> None:
                    with self.la:
                        with self.lb:
                            pass

                def two(self) -> None:
                    with self.lb:
                        self.grab_a()
            """,
        )
        assert "CC01" in rules_of(result)

    def test_flags_nonreentrant_self_acquire(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import threading


            class Once:
                def __init__(self) -> None:
                    self.lock = threading.Lock()

                def outer(self) -> None:
                    with self.lock:
                        self.inner()

                def inner(self) -> None:
                    with self.lock:
                        pass
            """,
        )
        messages = [f.message for f in result.findings if f.rule == "CC01"]
        assert any("non-reentrant" in m for m in messages)

    def test_consistent_order_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import threading


            class Pair:
                def __init__(self) -> None:
                    self.la = threading.Lock()
                    self.lb = threading.Lock()

                def one(self) -> None:
                    with self.la:
                        with self.lb:
                            pass

                def two(self) -> None:
                    with self.la:
                        with self.lb:
                            pass
            """,
        )
        assert "CC01" not in rules_of(result)

    def test_rlock_reacquire_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import threading


            class Re:
                def __init__(self) -> None:
                    self.lock = threading.RLock()

                def outer(self) -> None:
                    with self.lock:
                        self.inner()

                def inner(self) -> None:
                    with self.lock:
                        pass
            """,
        )
        assert "CC01" not in rules_of(result)


class TestBlockingUnderLockRule:
    def test_flags_direct_sleep(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import threading
            import time


            class Slow:
                def __init__(self) -> None:
                    self.lock = threading.Lock()

                def nap(self) -> None:
                    with self.lock:
                        time.sleep(1.0)
            """,
        )
        assert "CC02" in rules_of(result)

    def test_flags_transitive_fsync(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import os
            import threading


            class Log:
                def __init__(self) -> None:
                    self.lock = threading.Lock()

                def _sync(self) -> None:
                    os.fsync(0)

                def write(self) -> None:
                    with self.lock:
                        self._sync()
            """,
        )
        findings = [f for f in result.active_findings() if f.rule == "CC02"]
        assert any("os.fsync" in f.message for f in findings)

    def test_sleep_outside_lock_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import threading
            import time


            class Fine:
                def __init__(self) -> None:
                    self.lock = threading.Lock()

                def nap(self) -> None:
                    with self.lock:
                        pass
                    time.sleep(1.0)
            """,
        )
        assert "CC02" not in rules_of(result)

    def test_suppression_comment(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import threading
            import time


            class Slow:
                def __init__(self) -> None:
                    self.lock = threading.Lock()

                def nap(self) -> None:
                    with self.lock:
                        time.sleep(1.0)  # repro: lint-disable[CC02]
            """,
        )
        assert "CC02" not in rules_of(result)
        suppressed = [f for f in result.findings if f.rule == "CC02"]
        assert suppressed and all(f.suppressed for f in suppressed)


class TestGuardedByRule:
    GUARDED = """
        import threading


        class Box:
            _GUARDED_BY = {"value": "lock", "items": "lock"}

            def __init__(self) -> None:
                self.lock = threading.Lock()
                self.value = 0
                self.items = []

            def locked_write(self) -> None:
                with self.lock:
                    self.value += 1

            def unlocked_write(self) -> None:
                self.value += 1

            def unlocked_mutating_call(self) -> None:
                self.items.append(1)

            def documented_helper(self) -> None:
                \"\"\"Increment the tally (lock held by the caller).\"\"\"
                self.value += 1

            def _bump_locked(self) -> None:
                self.value += 1
    """

    def test_flags_unlocked_write_and_call_only(self, tmp_path):
        result = lint_snippet(tmp_path, self.GUARDED)
        findings = [f for f in result.active_findings() if f.rule == "CC03"]
        assert len(findings) == 2
        assert any("self.value" in f.message for f in findings)
        assert any("self.items.append" in f.message for f in findings)

    def test_init_and_assume_locked_are_exempt(self, tmp_path):
        result = lint_snippet(tmp_path, self.GUARDED)
        flagged = {f.line for f in result.findings if f.rule == "CC03"}
        text = (tmp_path / "mod.py").read_text().splitlines()
        # Each finding must sit inside one of the two unlocked methods;
        # __init__, the documented helper, and *_locked stay exempt.
        def def_line(name):
            return next(
                i for i, line in enumerate(text, 1) if f"def {name}" in line
            )

        methods = ("__init__", "locked_write", "unlocked_write",
                   "unlocked_mutating_call", "documented_helper",
                   "_bump_locked")
        for lineno in flagged:
            above = [name for name in methods if def_line(name) < lineno]
            enclosing = max(above, key=def_line)
            assert enclosing in ("unlocked_write", "unlocked_mutating_call")


class TestFloatEqualityRule:
    def test_flags_trust_comparison(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def decide(trust: float) -> bool:
                return trust == 0.5
            """,
        )
        assert "NH01" in rules_of(result)

    def test_flags_named_float_literal_in_trust_package(self, tmp_path):
        path = tmp_path / "src" / "repro" / "trust" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            textwrap.dedent(
                """
                def weight(w: float) -> float:
                    if w == 0.0:
                        return 0.0
                    return 1.0 / w
                """
            )
        )
        result = run_lint([path], project_root=tmp_path)
        assert "NH01" in rules_of(result)

    def test_int_comparison_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def decide(n_trust_updates: int) -> bool:
                return n_trust_updates == 0
            """,
        )
        assert "NH01" not in rules_of(result)

    def test_unrelated_float_guard_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def normalize(scale: float) -> float:
                if scale == 0.0:
                    return 0.0
                return 1.0 / scale
            """,
        )
        assert "NH01" not in rules_of(result)

    def test_baselined_finding_does_not_fail(self, tmp_path):
        source = """
        def decide(trust: float) -> bool:
            return trust == 0.5
        """
        entry = BaselineEntry(
            rule="NH01",
            path="mod.py",
            line_text="return trust == 0.5",
            reason="fixture",
        )
        result = lint_snippet(tmp_path, source, baseline=[entry])
        assert "NH01" not in rules_of(result)
        assert any(f.baselined for f in result.findings if f.rule == "NH01")
        assert not result.stale_baseline

    def test_stale_baseline_entry_is_reported(self, tmp_path):
        entry = BaselineEntry(
            rule="NH01",
            path="mod.py",
            line_text="return trust == 0.9",
            reason="fixture",
        )
        result = lint_snippet(tmp_path, "x = 1\n", baseline=[entry])
        assert [e.line_text for e in result.stale_baseline] == [
            "return trust == 0.9"
        ]


class TestNumericMiscRules:
    def test_unseeded_random_in_experiments(self, tmp_path):
        path = tmp_path / "src" / "repro" / "experiments" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text(
            "import numpy as np\n"
            "values = np.random.normal(size=3)\n"
            "rng = np.random.default_rng()\n"
        )
        result = run_lint([path], project_root=tmp_path)
        assert rules_of(result).count("NH02") == 2

    def test_seeded_rng_outside_experiments_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            import numpy as np

            rng = np.random.default_rng(7)
            values = np.random.normal(size=3)
            """,
        )
        assert "NH02" not in rules_of(result)

    def test_silent_except(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def load():
                try:
                    return open("x").read()
                except Exception:
                    pass
            """,
        )
        assert "NH03" in rules_of(result)

    def test_handled_except_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def load(log):
                try:
                    return int("x")
                except ValueError:
                    pass
                except Exception as exc:
                    log(exc)
                return 0
            """,
        )
        assert "NH03" not in rules_of(result)


class TestStructureRules:
    def test_mutable_default(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def collect(into=[]):
                return into
            """,
        )
        assert "ST01" in rules_of(result)

    def test_none_default_is_clean(self, tmp_path):
        result = lint_snippet(
            tmp_path,
            """
            def collect(into=None):
                return into if into is not None else []
            """,
        )
        assert "ST01" not in rules_of(result)

    def test_print_in_library_code(self, tmp_path):
        path = tmp_path / "src" / "repro" / "mod.py"
        path.parent.mkdir(parents=True)
        path.write_text('print("hello")\n')
        result = run_lint([path], project_root=tmp_path)
        assert "ST02" in rules_of(result)

    def test_print_in_cli_is_allowed(self, tmp_path):
        path = tmp_path / "src" / "repro" / "cli.py"
        path.parent.mkdir(parents=True)
        path.write_text('print("hello")\n')
        result = run_lint([path], project_root=tmp_path)
        assert "ST02" not in rules_of(result)


class TestApiDriftRule:
    def test_missing_export_coverage(self, tmp_path):
        pkg = tmp_path / "src" / "pkg"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text('__all__ = ["covered", "orphan"]\n')
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_api_surface.py").write_text(
            "EXPECTED = ['covered']\n"
        )
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "API_GUIDE.md").write_text("`covered`\n")
        result = run_lint([pkg], project_root=tmp_path)
        findings = [f for f in result.active_findings() if f.rule == "AD01"]
        assert len(findings) == 2
        assert all("orphan" in f.message for f in findings)

    def test_skipped_when_targets_absent(self, tmp_path):
        pkg = tmp_path / "src" / "pkg"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text('__all__ = ["orphan"]\n')
        result = run_lint([pkg], project_root=tmp_path)
        assert "AD01" not in rules_of(result)


class TestRunnerAndCli:
    def test_select_unknown_rule_raises(self, tmp_path):
        with pytest.raises(ValueError, match="unknown rule"):
            lint_snippet(tmp_path, "x = 1\n", select={"ZZ99"})

    def test_cli_exit_codes(self, tmp_path, capsys):
        dirty = tmp_path / "mod.py"
        dirty.write_text(
            "def decide(trust: float) -> bool:\n    return trust == 0.5\n"
        )
        assert lint_main([str(dirty), "--project-root", str(tmp_path)]) == 1
        clean = tmp_path / "ok.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean), "--project-root", str(tmp_path)]) == 0
        assert lint_main(["/nonexistent", "--project-root", str(tmp_path)]) == 2
        capsys.readouterr()

    def test_cli_json_format(self, tmp_path, capsys):
        dirty = tmp_path / "mod.py"
        dirty.write_text(
            "def decide(trust: float) -> bool:\n    return trust == 0.5\n"
            "\n\ncheck = decide\n"
        )
        code = lint_main(
            [str(dirty), "--project-root", str(tmp_path), "--format=json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["active_count"] == 1
        assert payload["findings"][0]["rule"] == "NH01"

    def test_update_baseline_roundtrip(self, tmp_path, capsys):
        dirty = tmp_path / "mod.py"
        dirty.write_text(
            "def decide(trust: float) -> bool:\n    return trust == 0.5\n"
            "\n\ncheck = decide\n"
        )
        root = ["--project-root", str(tmp_path)]
        assert lint_main([str(dirty)] + root + ["--update-baseline"]) == 0
        baseline = Baseline.load(tmp_path / ".lint-baseline.json")
        assert len(baseline.entries) == 1
        # Baselined now; the same run is clean.
        assert lint_main([str(dirty)] + root) == 0
        capsys.readouterr()

    def test_all_rule_families_registered(self):
        ids = set(all_rules())
        assert {"CC01", "CC02", "CC03", "CC04", "CC05",
                "NH01", "NH02", "NH03",
                "AD01", "ST01", "ST02",
                "DI01", "DI02", "DI03", "AR01", "AR02",
                "EX01", "EX02", "DX01", "DX02",
                "DP01", "DP02", "DP03",
                "SD01", "SD02", "SD03"} <= ids


class TestSelfCheck:
    def test_repro_lint_is_clean_on_src_with_committed_baseline(self):
        result = run_lint(
            [PROJECT_ROOT / "src"],
            project_root=PROJECT_ROOT,
            baseline_path=PROJECT_ROOT / ".lint-baseline.json",
        )
        assert result.active_findings() == []
        assert result.stale_baseline == []

    def test_committed_baseline_is_small_and_justified(self):
        baseline = Baseline.load(PROJECT_ROOT / ".lint-baseline.json")
        assert 0 < len(baseline.entries) <= 10
        for entry in baseline.entries:
            assert entry.reason.strip(), f"baseline entry {entry} needs a reason"
            assert "TODO" not in entry.reason
