"""Tests for the dependency-free metrics registry."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ConfigurationError
from repro.service.metrics import MetricsRegistry


class TestCounter:
    def test_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "Events.")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ConfigurationError):
            registry.gauge("thing")


class TestGauge:
    def test_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_labelled_children_are_distinct(self):
        registry = MetricsRegistry()
        a = registry.gauge("depth", labels={"shard": "0"})
        b = registry.gauge("depth", labels={"shard": "1"})
        a.set(1)
        b.set(2)
        assert a is not b
        assert registry.gauge("depth", labels={"shard": "0"}).value == 1


class TestHistogram:
    def test_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        text = registry.render()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_count 4" in text
        assert histogram.sum == pytest.approx(6.05)

    def test_timer(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t", buckets=(10.0,))
        with histogram.time():
            pass
        assert histogram.count == 1

    def test_empty_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", buckets=())


class TestRender:
    def test_help_and_type_lines(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "Things counted.")
        registry.gauge("b", "A level.", labels={"shard": "3"}).set(7)
        text = registry.render()
        assert "# HELP a_total Things counted." in text
        assert "# TYPE a_total counter" in text
        assert 'b{shard="3"} 7' in text
        assert text.endswith("\n")

    def test_integer_formatting(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(3)
        assert "n 3" in registry.render()

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zz")
        registry.counter("aa")
        assert registry.names() == ["aa", "zz"]

    def test_thread_safety_smoke(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total")

        def spin():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000
