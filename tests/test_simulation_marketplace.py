"""Tests for the Section IV marketplace generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ratings.models import RaterClass
from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace


SMALL = MarketplaceConfig(
    n_reliable=40, n_careless=20, n_pc=20, n_months=2, p_rate=0.02
)


@pytest.fixture(scope="module")
def small_world():
    return generate_marketplace(SMALL, np.random.default_rng(42))


class TestConfig:
    def test_paper_defaults(self):
        config = MarketplaceConfig()
        assert config.n_raters == 800
        assert config.n_products == 60
        assert config.horizon == 360.0
        assert config.products_per_month == 5

    def test_rater_class_blocks(self):
        config = MarketplaceConfig()
        assert config.rater_class_of(0) is RaterClass.RELIABLE
        assert config.rater_class_of(399) is RaterClass.RELIABLE
        assert config.rater_class_of(400) is RaterClass.CARELESS
        assert config.rater_class_of(599) is RaterClass.CARELESS
        assert config.rater_class_of(600) is RaterClass.POTENTIAL_COLLABORATIVE
        assert config.rater_class_of(799) is RaterClass.POTENTIAL_COLLABORATIVE

    def test_rater_id_out_of_range(self):
        with pytest.raises(ConfigurationError):
            MarketplaceConfig().rater_class_of(800)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            MarketplaceConfig(p_rate=0.0)
        with pytest.raises(ConfigurationError):
            MarketplaceConfig(p_rate=0.5, a1=6.0)  # a1 * p_rate > 1
        with pytest.raises(ConfigurationError):
            MarketplaceConfig(recruit_power3=1.5)
        with pytest.raises(ConfigurationError):
            MarketplaceConfig(attack_days=0)


class TestWorldStructure:
    def test_one_dishonest_product_per_month(self, small_world):
        assert len(small_world.schedules) == 2
        assert small_world.dishonest_product_ids == [4, 9]
        assert len(small_world.honest_product_ids) == 8

    def test_products_available_within_their_month(self, small_world):
        product = small_world.store.product(0)
        assert product.available_from == 0.0
        assert product.available_until == 30.0
        later = small_world.store.product(5)
        assert later.available_from == 30.0

    def test_qualities_in_configured_band(self, small_world):
        for quality in small_world.qualities.values():
            assert 0.4 <= quality <= 0.6

    def test_attack_window_inside_month(self, small_world):
        for schedule in small_world.schedules:
            month_start = schedule.month * 30
            assert month_start <= schedule.attack_start
            assert schedule.attack_end <= month_start + 30
            assert schedule.attack_end - schedule.attack_start == 10

    def test_recruited_are_pc_raters(self, small_world):
        for schedule in small_world.schedules:
            for rater_id in schedule.recruited_rater_ids:
                assert (
                    small_world.rater_classes[rater_id]
                    is RaterClass.POTENTIAL_COLLABORATIVE
                )

    def test_recruitment_fraction(self, small_world):
        expected = round(SMALL.recruit_power3 * SMALL.n_pc)
        for schedule in small_world.schedules:
            assert len(schedule.recruited_rater_ids) == expected


class TestRatings:
    def test_ratings_only_during_product_month(self, small_world):
        for pid in small_world.qualities:
            product = small_world.store.product(pid)
            stream = small_world.store.stream(pid)
            if len(stream) == 0:
                continue
            assert stream.times.min() >= product.available_from
            assert stream.times.max() < product.available_until

    def test_one_rating_per_rater_per_product(self, small_world):
        for pid in small_world.qualities:
            rater_ids = small_world.store.stream(pid).rater_ids
            assert len(rater_ids) == len(set(rater_ids.tolist()))

    def test_unfair_ratings_only_on_dishonest_products_in_attack(self, small_world):
        for pid in small_world.honest_product_ids:
            assert not small_world.store.stream(pid).unfair_flags.any()
        for schedule in small_world.schedules:
            unfair = small_world.store.stream(schedule.product_id).unfair_only()
            assert len(unfair) > 0
            assert np.all(unfair.times >= schedule.attack_start)
            assert np.all(unfair.times < schedule.attack_end)
            recruited = set(schedule.recruited_rater_ids)
            assert {r.rater_id for r in unfair} <= recruited

    def test_unfair_ratings_biased_upward(self, small_world):
        for schedule in small_world.schedules:
            stream = small_world.store.stream(schedule.product_id)
            unfair_mean = stream.unfair_only().mean()
            quality = small_world.qualities[schedule.product_id]
            assert unfair_mean > quality + 0.05

    def test_values_on_ten_level_scale(self, small_world):
        values = small_world.store.all_ratings().values
        levels = set(np.round((np.arange(1, 11)) / 10.0, 9))
        assert set(np.round(values, 9)) <= levels

    def test_honest_rating_volume_reasonable(self, small_world):
        # 60 honest raters, p_rate 0.02, 30 days, 5 products:
        # expected per product ~ 60 * (1 - 0.98^30) ~ 27.
        for pid in small_world.honest_product_ids:
            n = len(small_world.store.stream(pid))
            assert 5 <= n <= 80

    def test_reproducible(self):
        a = generate_marketplace(SMALL, np.random.default_rng(9))
        b = generate_marketplace(SMALL, np.random.default_rng(9))
        assert a.qualities == b.qualities
        np.testing.assert_array_equal(
            a.store.all_ratings().values, b.store.all_ratings().values
        )
