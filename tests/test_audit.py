"""Tests for the trace-audit entry point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.audit import audit_file, audit_stream, format_audit
from repro.errors import ConfigurationError, EmptyWindowError
from repro.ratings.io import write_csv, write_jsonl
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative
from tests.conftest import make_stream


@pytest.fixture(scope="module")
def attacked_trace():
    return generate_illustrative(IllustrativeConfig(), np.random.default_rng(3))


class TestAuditStream:
    def test_finds_the_campaign(self, attacked_trace):
        result = audit_stream(attacked_trace.attacked)
        assert result.suspicious_intervals
        config = attacked_trace.config
        # At least one merged span overlaps the true attack interval.
        assert any(
            start < config.attack_end and end > config.attack_start
            for start, end, _ in result.suspicious_intervals
        )

    def test_auto_threshold_from_trace(self, attacked_trace):
        result = audit_stream(attacked_trace.attacked)
        assert 0.0 < result.threshold < 1.0
        # The calibrated threshold is trace-relative: ~the configured
        # quantile of windows flags.
        flagged = np.sum(result.errors < result.threshold)
        assert flagged >= 1

    def test_explicit_threshold_respected(self, attacked_trace):
        result = audit_stream(attacked_trace.attacked, threshold=0.001)
        assert result.threshold == 0.001
        assert not result.suspicious_intervals

    def test_ground_truth_scored_when_labels_present(self, attacked_trace):
        result = audit_stream(attacked_trace.attacked)
        assert result.ground_truth is not None
        assert result.ground_truth.detection_ratio > 0.2

    def test_no_ground_truth_on_unlabeled_trace(self, attacked_trace):
        result = audit_stream(attacked_trace.honest)
        assert result.ground_truth is None

    def test_top_raters_sorted(self, attacked_trace):
        result = audit_stream(attacked_trace.attacked, top_n=5)
        suspicions = [c for _, c in result.top_raters]
        assert suspicions == sorted(suspicions, reverse=True)
        assert len(result.top_raters) <= 5

    def test_tiny_trace_rejected(self):
        with pytest.raises(EmptyWindowError):
            audit_stream(make_stream([0.5] * 10))

    def test_consecutive_windows_merge(self, attacked_trace):
        result = audit_stream(attacked_trace.attacked)
        # Merged spans never overlap each other.
        spans = result.suspicious_intervals
        for (s1, e1, _), (s2, e2, _) in zip(spans, spans[1:]):
            assert s2 > e1


class TestAuditFile:
    def test_jsonl_round_trip(self, attacked_trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(attacked_trace.attacked, path)
        result = audit_file(path)
        assert result.suspicious_intervals

    def test_csv_round_trip(self, attacked_trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(attacked_trace.attacked, path)
        result = audit_file(path)
        assert len(result.stream) == len(attacked_trace.attacked)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            audit_file(tmp_path / "nope.jsonl")

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "trace.parquet"
        path.write_text("x")
        with pytest.raises(ConfigurationError):
            audit_file(path)


class TestCliAudit:
    def test_end_to_end(self, attacked_trace, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "trace.jsonl"
        write_jsonl(attacked_trace.attacked, path)
        assert main(["audit", str(path)]) == 0
        out = capsys.readouterr().out
        assert "suspicious intervals" in out
        assert "ground truth present" in out

    def test_format_report(self, attacked_trace):
        report = format_audit(audit_stream(attacked_trace.attacked))
        assert "error series" in report
        assert "threshold" in report
