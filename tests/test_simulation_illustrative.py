"""Tests for the illustrative single-object simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative


class TestConfig:
    def test_paper_defaults(self):
        config = IllustrativeConfig()
        assert config.simu_time == 60.0
        assert config.arrival_rate == 3.0
        assert config.levels == 11
        assert config.attack_start == 30.0
        assert config.attack_end == 44.0

    def test_quality_ramp(self):
        config = IllustrativeConfig()
        assert config.quality(0.0) == 0.7
        assert config.quality(60.0) == 0.8

    def test_without_attack_disables_channels(self):
        config = IllustrativeConfig().without_attack()
        assert config.recruit_power1 == 0.0
        assert config.recruit_power2 == 0.0

    def test_invalid_attack_interval(self):
        with pytest.raises(ConfigurationError):
            IllustrativeConfig(attack_start=50.0, attack_end=40.0)
        with pytest.raises(ConfigurationError):
            IllustrativeConfig(attack_end=80.0)

    def test_invalid_time(self):
        with pytest.raises(ConfigurationError):
            IllustrativeConfig(simu_time=0.0, attack_start=0.0, attack_end=0.0)


class TestGeneration:
    def test_honest_count_matches_rate(self, rng):
        trace = generate_illustrative(IllustrativeConfig(), rng)
        assert len(trace.honest) == pytest.approx(180, rel=0.25)

    def test_honest_has_no_unfair(self, rng):
        trace = generate_illustrative(IllustrativeConfig(), rng)
        assert not trace.honest.unfair_flags.any()

    def test_attacked_contains_unfair(self, rng):
        trace = generate_illustrative(IllustrativeConfig(), rng)
        assert trace.n_unfair > 0
        unfair_times = trace.attacked.unfair_only().times
        assert np.all((unfair_times >= 30.0) & (unfair_times < 44.0))

    def test_values_on_eleven_level_scale(self, rng):
        trace = generate_illustrative(IllustrativeConfig(), rng)
        levels = set(np.round(np.arange(11) / 10.0, 9))
        assert set(np.round(trace.attacked.values, 9)) <= levels

    def test_honest_mean_tracks_quality(self, rng):
        config = IllustrativeConfig(good_var=0.01)
        trace = generate_illustrative(config, rng)
        early = trace.honest.between(0.0, 20.0).mean()
        assert early == pytest.approx(0.71, abs=0.05)

    def test_recruited_raters_have_fresh_ids(self, rng):
        trace = generate_illustrative(IllustrativeConfig(), rng)
        n_honest = len(trace.honest)
        recruited_ids = {
            r.rater_id
            for r in trace.attacked.unfair_only()
            if r.rater_id >= n_honest
        }
        assert recruited_ids  # type 2 channel active

    def test_type1_influences_subset_of_honest(self, rng):
        config = IllustrativeConfig(recruit_power2=0.0)  # only type 1
        trace = generate_illustrative(config, rng)
        assert len(trace.attacked) == len(trace.honest)
        influenced = trace.attacked.unfair_only()
        in_window_honest = trace.honest.between(30.0, 44.0)
        if len(in_window_honest):
            fraction = len(influenced) / len(in_window_honest)
            assert fraction == pytest.approx(0.3, abs=0.2)

    def test_without_attack_streams_identical(self, rng):
        config = IllustrativeConfig().without_attack()
        trace = generate_illustrative(config, rng)
        assert len(trace.attacked) == len(trace.honest)
        assert not trace.attacked.unfair_flags.any()

    def test_reproducible_from_seed(self):
        config = IllustrativeConfig()
        a = generate_illustrative(config, np.random.default_rng(5))
        b = generate_illustrative(config, np.random.default_rng(5))
        np.testing.assert_array_equal(a.attacked.values, b.attacked.values)
        np.testing.assert_array_equal(a.attacked.times, b.attacked.times)

    def test_attack_raises_mean_inside_window(self):
        # Average over many seeds: the campaign lifts the in-window mean.
        lifts = []
        for seed in range(10):
            rng = np.random.default_rng(seed)
            trace = generate_illustrative(IllustrativeConfig(), rng)
            honest = trace.honest.between(30.0, 44.0).mean()
            attacked = trace.attacked.between(30.0, 44.0).mean()
            lifts.append(attacked - honest)
        assert np.mean(lifts) > 0.03
