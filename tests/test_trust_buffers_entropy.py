"""Tests for observation/recommendation buffers and entropy trust."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.trust.buffers import ObservationBuffer, RecommendationBuffer
from repro.trust.entropy_trust import (
    binary_entropy,
    concatenate,
    entropy_trust,
    entropy_trust_inverse,
    multipath,
)


class TestObservationBuffer:
    def test_accumulates_per_rater(self):
        buffer = ObservationBuffer()
        buffer.record_provided(1, count=3)
        buffer.record_filtered(1)
        buffer.record_suspicious(1, count=2)
        buffer.record_suspicion_value(1, 0.7)
        obs = buffer.peek(1)
        assert obs.n_provided == 3
        assert obs.n_filtered == 1
        assert obs.n_suspicious == 2
        assert obs.suspicion_value == pytest.approx(0.7)

    def test_drain_clears(self):
        buffer = ObservationBuffer()
        buffer.record_provided(1)
        drained = buffer.drain()
        assert 1 in drained
        assert len(buffer) == 0
        assert buffer.peek(1).n_provided == 0

    def test_peek_unknown_rater_is_empty(self):
        assert ObservationBuffer().peek(42).n_provided == 0

    def test_negative_counts_rejected(self):
        buffer = ObservationBuffer()
        with pytest.raises(ConfigurationError):
            buffer.record_provided(1, count=-1)
        with pytest.raises(ConfigurationError):
            buffer.record_suspicion_value(1, -0.1)

    def test_merge(self):
        from repro.trust.buffers import RaterObservation

        a = RaterObservation(n_provided=1, n_filtered=1)
        b = RaterObservation(n_provided=2, suspicion_value=0.3)
        a.merge(b)
        assert a.n_provided == 3
        assert a.suspicion_value == 0.3


class TestRecommendationBuffer:
    def test_record_and_drain(self):
        buffer = RecommendationBuffer()
        buffer.record(1, 2, 0.8)
        buffer.record(2, 3, 0.4)
        assert len(buffer) == 2
        edges = buffer.edges()
        assert (1, 2, 0.8) in edges
        recommendations = buffer.drain()
        assert len(recommendations) == 2
        assert len(buffer) == 0

    def test_self_recommendation_rejected(self):
        with pytest.raises(ConfigurationError):
            RecommendationBuffer().record(1, 1, 0.5)

    def test_score_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            RecommendationBuffer().record(1, 2, 1.5)


class TestBinaryEntropy:
    def test_extremes_are_zero(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_maximum_at_half(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_symmetric(self):
        assert binary_entropy(0.3) == pytest.approx(binary_entropy(0.7))

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            binary_entropy(1.1)


class TestEntropyTrust:
    def test_no_information_at_half(self):
        assert entropy_trust(0.5) == 0.0

    def test_full_trust_and_distrust(self):
        assert entropy_trust(1.0) == 1.0
        assert entropy_trust(0.0) == -1.0

    def test_antisymmetric(self):
        assert entropy_trust(0.8) == pytest.approx(-entropy_trust(0.2))

    def test_monotone(self):
        probs = np.linspace(0.0, 1.0, 21)
        trusts = [entropy_trust(float(p)) for p in probs]
        assert all(a <= b + 1e-12 for a, b in zip(trusts, trusts[1:]))

    def test_inverse_round_trip(self):
        for p in (0.01, 0.3, 0.5, 0.77, 0.99):
            assert entropy_trust_inverse(entropy_trust(p)) == pytest.approx(
                p, abs=1e-6
            )

    def test_inverse_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            entropy_trust_inverse(1.5)


class TestPropagation:
    def test_concatenation_shrinks_trust(self):
        assert concatenate(0.8, 0.9) == pytest.approx(0.72)
        assert abs(concatenate(0.5, 0.5)) < 0.5

    def test_distrusted_recommender_carries_nothing(self):
        assert concatenate(-0.5, 0.9) == 0.0

    def test_concatenation_preserves_distrust_sign(self):
        assert concatenate(0.8, -0.5) == pytest.approx(-0.4)

    def test_concatenate_range_checked(self):
        with pytest.raises(ConfigurationError):
            concatenate(1.5, 0.5)

    def test_multipath_weighted_average(self):
        fused = multipath([1.0, 1.0], [0.8, 0.4])
        assert fused == pytest.approx(0.6)

    def test_multipath_weights_by_recommendation_trust(self):
        fused = multipath([0.9, 0.1], [1.0, 0.0])
        assert fused == pytest.approx(0.9)

    def test_multipath_no_information(self):
        assert multipath([0.0, -0.5], [0.9, 0.9]) == 0.0

    def test_multipath_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            multipath([0.5], [0.5, 0.5])
