"""Tests for detection metrics, ROC sweeps, and the Monte-Carlo driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.base import WindowVerdict
from repro.errors import ConfigurationError
from repro.evaluation.aggregation_error import aggregation_errors
from repro.evaluation.detection import (
    ConfusionCounts,
    any_suspicious,
    interval_detected,
    rater_detection,
    rating_detection,
    window_confusion,
)
from repro.evaluation.montecarlo import monte_carlo, summarize
from repro.evaluation.roc import calibrate_threshold, operating_point, roc_from_scores
from repro.ratings.models import RaterClass
from repro.ratings.stream import RatingStream
from repro.signal.windows import Window
from tests.conftest import make_rating


def verdict(start, end, suspicious):
    return WindowVerdict(
        window=Window(
            index=0, indices=np.arange(1), start_time=start, end_time=end
        ),
        statistic=0.1,
        suspicious=suspicious,
        level=0.5 if suspicious else 0.0,
    )


class TestConfusionCounts:
    def test_ratios(self):
        counts = ConfusionCounts(
            true_positives=8, false_negatives=2, false_positives=1, true_negatives=9
        )
        assert counts.detection_ratio == pytest.approx(0.8)
        assert counts.false_alarm_ratio == pytest.approx(0.1)
        assert counts.precision == pytest.approx(8.0 / 9.0)

    def test_empty_denominators(self):
        counts = ConfusionCounts()
        assert counts.detection_ratio == 0.0
        assert counts.false_alarm_ratio == 0.0
        assert counts.precision == 0.0

    def test_merge(self):
        a = ConfusionCounts(true_positives=1)
        b = ConfusionCounts(true_positives=2, false_positives=3)
        merged = a.merged(b)
        assert merged.true_positives == 3
        assert merged.false_positives == 3


class TestWindowMetrics:
    def test_window_confusion(self):
        verdicts = [
            verdict(0, 10, False),   # clean, quiet -> TN
            verdict(10, 20, True),   # clean, flagged -> FP
            verdict(25, 35, True),   # overlaps attack, flagged -> TP
            verdict(35, 45, False),  # overlaps attack, quiet -> FN
        ]
        counts = window_confusion(verdicts, attack_start=30.0, attack_end=44.0)
        assert counts.true_positives == 1
        assert counts.false_positives == 1
        assert counts.true_negatives == 1
        assert counts.false_negatives == 1

    def test_interval_detected(self):
        verdicts = [verdict(0, 10, True), verdict(28, 38, False)]
        assert not interval_detected(verdicts, 30.0, 44.0)
        verdicts.append(verdict(40, 50, True))
        assert interval_detected(verdicts, 30.0, 44.0)

    def test_any_suspicious(self):
        assert not any_suspicious([verdict(0, 10, False)])
        assert any_suspicious([verdict(0, 10, True)])


class TestRatingDetection:
    def test_counts(self):
        ratings = [
            make_rating(0, 0.5, 0.0),
            make_rating(1, 0.9, 1.0, unfair=True),
            make_rating(2, 0.9, 2.0, unfair=True),
            make_rating(3, 0.5, 3.0),
        ]
        stream = RatingStream.from_ratings(ratings)
        counts = rating_detection(stream, flagged_rating_ids=[1, 3])
        assert counts.true_positives == 1
        assert counts.false_negatives == 1
        assert counts.false_positives == 1
        assert counts.true_negatives == 1


class TestRaterDetection:
    def test_per_class_rates(self):
        trust = {0: 0.9, 1: 0.3, 2: 0.4, 3: 0.8}
        classes = {
            0: RaterClass.RELIABLE,
            1: RaterClass.RELIABLE,
            2: RaterClass.POTENTIAL_COLLABORATIVE,
            3: RaterClass.POTENTIAL_COLLABORATIVE,
        }
        stats = rater_detection(trust, classes, threshold=0.5)
        assert stats.detection_rate == 0.5
        assert stats.false_alarm_rates[RaterClass.RELIABLE] == 0.5

    def test_unknown_rater_defaults_to_prior(self):
        stats = rater_detection(
            {}, {0: RaterClass.POTENTIAL_COLLABORATIVE}, threshold=0.5
        )
        assert stats.detection_rate == 0.0


class TestRoc:
    def test_perfect_separation(self):
        curve = roc_from_scores(
            attack_scores=[0.1, 0.12, 0.09], honest_scores=[0.3, 0.32, 0.29]
        )
        assert curve.auc() == pytest.approx(1.0, abs=0.02)

    def test_no_separation(self, rng):
        scores = rng.uniform(0, 1, size=400)
        curve = roc_from_scores(scores[:200], scores[200:])
        assert curve.auc() == pytest.approx(0.5, abs=0.1)

    def test_larger_is_suspicious_mode(self):
        curve = roc_from_scores(
            attack_scores=[0.9], honest_scores=[0.1], smaller_is_suspicious=False
        )
        assert curve.auc() == pytest.approx(1.0, abs=0.02)

    def test_operating_point_respects_budget(self):
        curve = roc_from_scores([0.1, 0.2], [0.15, 0.4])
        point = operating_point(curve, max_false_alarm=0.0)
        assert point.false_alarm_ratio == 0.0

    def test_operating_point_invalid_budget(self):
        curve = roc_from_scores([0.1], [0.5])
        with pytest.raises(ConfigurationError):
            operating_point(curve, max_false_alarm=1.5)

    def test_empty_scores_rejected(self):
        with pytest.raises(ConfigurationError):
            roc_from_scores([], [0.5])

    def test_calibrate_threshold_quantile(self):
        scores = np.linspace(0.1, 1.0, 100)
        threshold = calibrate_threshold(scores, quantile=0.05)
        assert np.mean(scores < threshold) <= 0.05

    def test_calibrate_invalid_quantile(self):
        with pytest.raises(ConfigurationError):
            calibrate_threshold([0.5], quantile=0.0)


class TestMonteCarlo:
    def test_reproducible(self):
        run = lambda rng: float(rng.uniform())
        a = monte_carlo(run, n_runs=5, master_seed=1)
        b = monte_carlo(run, n_runs=5, master_seed=1)
        assert a.outcomes == b.outcomes

    def test_runs_independent(self):
        run = lambda rng: float(rng.uniform())
        result = monte_carlo(run, n_runs=10, master_seed=0)
        assert len(set(result.outcomes)) == 10

    def test_mean_and_fraction(self):
        result = monte_carlo(lambda rng: rng.uniform(), n_runs=500, master_seed=3)
        assert result.mean_of(float) == pytest.approx(0.5, abs=0.05)
        assert result.fraction(lambda v: v < 0.5) == pytest.approx(0.5, abs=0.07)

    def test_zero_runs_rejected(self):
        with pytest.raises(ConfigurationError):
            monte_carlo(lambda rng: 0, n_runs=0)

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.n == 3
        assert summary.ci95_halfwidth > 0.0

    def test_summarize_single_value(self):
        summary = summarize([4.0])
        assert summary.std == 0.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestAggregationErrors:
    def test_error_statistics(self):
        aggregated = {1: 0.6, 2: 0.5}
        quality = {1: 0.5, 2: 0.5}
        errors = aggregation_errors(aggregated, quality)
        assert errors.mean_abs_error == pytest.approx(0.05)
        assert errors.max_abs_error == pytest.approx(0.1)
        assert errors.mean_signed_error == pytest.approx(0.05)
        assert errors.n_products == 2

    def test_subset_of_products(self):
        aggregated = {1: 0.6, 2: 0.9}
        quality = {1: 0.5, 2: 0.5}
        errors = aggregation_errors(aggregated, quality, product_ids=[1])
        assert errors.n_products == 1
        assert errors.max_abs_error == pytest.approx(0.1)

    def test_no_products_rejected(self):
        with pytest.raises(ConfigurationError):
            aggregation_errors({}, {})
