"""End-to-end integration tests across the whole pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.methods import ModifiedWeightedAverage, SimpleAverage
from repro.core.system import TrustEnhancedRatingSystem
from repro.detectors.ar_detector import ARModelErrorDetector
from repro.evaluation.detection import rating_detection
from repro.experiments.fig4 import build_illustrative_detector
from repro.filters.beta_quantile import BetaQuantileFilter
from repro.ratings.models import Product, RaterClass, RaterProfile
from repro.signal.windows import CountWindower
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative
from repro.trust.manager import TrustManagerConfig


class TestIllustrativeEndToEnd:
    """Feed the paper's illustrative trace through the full Fig. 1 system."""

    @pytest.fixture(scope="class")
    def system_and_trace(self):
        config = IllustrativeConfig()
        trace = generate_illustrative(config, np.random.default_rng(0))
        system = TrustEnhancedRatingSystem(
            rating_filter=BetaQuantileFilter(sensitivity=0.05),
            detector=build_illustrative_detector(),
            trust_config=TrustManagerConfig(badness_weight=1.0),
        )
        system.register_product(
            Product(product_id=0, quality=config.quality, dishonest=True)
        )
        for rating in trace.attacked:
            system.register_rater(
                RaterProfile(
                    rater_id=rating.rater_id,
                    rater_class=RaterClass.RELIABLE
                    if not rating.unfair
                    else RaterClass.TYPE2_COLLABORATIVE,
                )
            )
        system.ingest(trace.attacked)
        reports = system.run(0.0, config.simu_time, interval=15.0)
        return system, trace, reports

    def test_attack_interval_flagged(self, system_and_trace):
        system, trace, reports = system_and_trace
        flagged = set()
        for report in reports:
            flagged |= report.flagged_rating_ids
        counts = rating_detection(trace.attacked, flagged)
        assert counts.detection_ratio > 0.3
        assert counts.false_alarm_ratio < 0.5

    def test_unfair_raters_lose_trust(self, system_and_trace):
        system, trace, _ = system_and_trace
        unfair_ids = {r.rater_id for r in trace.attacked if r.unfair}
        fair_ids = {r.rater_id for r in trace.attacked if not r.unfair}
        unfair_trust = np.mean([system.trust_manager.trust(r) for r in unfair_ids])
        fair_trust = np.mean([system.trust_manager.trust(r) for r in fair_ids])
        assert unfair_trust < fair_trust

    def test_trust_weighted_aggregate_beats_simple(self, system_and_trace):
        system, trace, _ = system_and_trace
        config = trace.config
        # True quality over the trace: the ramp midpoint.
        true_quality = 0.5 * (config.quality_start + config.quality_end)
        mwa = system.aggregated_rating(0, ModifiedWeightedAverage())
        simple = system.aggregated_rating(0, SimpleAverage())
        honest_mean = trace.honest.mean()
        # The trust-weighted aggregate must sit at least as close to the
        # honest consensus as the contaminated simple average.
        assert abs(mwa - honest_mean) <= abs(simple - honest_mean) + 0.02


class TestDetectorRobustness:
    def test_detector_on_quality_ramp_without_attack(self):
        # A drifting quality alone must not trip the detector often.
        config = IllustrativeConfig(quality_start=0.5, quality_end=0.8)
        false_alarms = 0
        detector = build_illustrative_detector()
        for seed in range(5):
            trace = generate_illustrative(config, np.random.default_rng(seed))
            report = detector.detect(trace.honest)
            false_alarms += bool(report.suspicious_verdicts)
        assert false_alarms <= 2

    def test_detector_scale_free_in_rating_count(self):
        # Doubling the arrival rate must not break detection.
        config = IllustrativeConfig(arrival_rate=6.0)
        detector = ARModelErrorDetector(
            order=4,
            threshold=0.10,
            scale=1.0,
            level_rule="literal",
            windower=CountWindower(size=100, step=20),
        )
        detections = 0
        for seed in range(5):
            trace = generate_illustrative(config, np.random.default_rng(seed))
            report = detector.detect(trace.attacked)
            suspicious_mids = [
                v.window.mid_time for v in report.suspicious_verdicts
            ]
            detections += any(25 <= m <= 48 for m in suspicious_mids)
        assert detections >= 3

    def test_downgrade_attack_drops_error_too(self):
        # A negative-bias campaign also drops the model error, though
        # less sharply than a boost: the lowered mean raises the
        # error's denominator share while the tight collusion variance
        # lowers it (the energy normalization is asymmetric in the bias
        # sign -- quantified by the ablation bench).
        config = IllustrativeConfig(bias_shift1=-0.2, bias_shift2=-0.15)
        detector = build_illustrative_detector()
        relative_drops = 0
        for seed in range(5):
            trace = generate_illustrative(config, np.random.default_rng(seed))
            mids, errors = detector.error_series(trace.attacked)
            in_attack = (mids >= 25) & (mids <= 48)
            relative_drops += (
                errors[in_attack].min() < errors[~in_attack].min()
            )
        assert relative_drops >= 4
