"""Tests for the AR model-error detector (Procedure 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.ar_detector import ARModelErrorDetector
from repro.errors import ConfigurationError
from repro.ratings.stream import RatingStream
from repro.signal.windows import CountWindower, TimeWindower
from tests.conftest import make_rating, make_stream


def attack_stream(rng, n_honest=150, n_attack=80):
    """Honest noise with a tight biased cluster in the middle third."""
    ratings = []
    rid = 0
    for t in np.sort(rng.uniform(0, 60, size=n_honest)):
        value = float(np.clip(rng.normal(0.7, 0.45, 1)[0], 0, 1))
        ratings.append(make_rating(rid, round(value, 1), float(t), rater_id=rid))
        rid += 1
    for t in np.sort(rng.uniform(25, 40, size=n_attack)):
        value = float(np.clip(rng.normal(0.85, 0.14, 1)[0], 0, 1))
        ratings.append(
            make_rating(rid, round(value, 1), float(t), rater_id=rid, unfair=True)
        )
        rid += 1
    return RatingStream.from_ratings(ratings)


class TestConfiguration:
    def test_invalid_order(self):
        with pytest.raises(ConfigurationError):
            ARModelErrorDetector(order=0)

    def test_invalid_threshold(self):
        for threshold in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigurationError):
                ARModelErrorDetector(threshold=threshold)

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            ARModelErrorDetector(scale=0.0)

    def test_invalid_method(self):
        with pytest.raises(ConfigurationError):
            ARModelErrorDetector(method="magic")

    def test_invalid_level_rule(self):
        with pytest.raises(ConfigurationError):
            ARModelErrorDetector(level_rule="sometimes")

    def test_default_min_window_guards_order(self):
        detector = ARModelErrorDetector(order=4)
        assert detector.min_window > 2 * 4


class TestLevels:
    def test_bounded_level_in_range(self):
        detector = ARModelErrorDetector(threshold=0.2, scale=0.5, level_rule="bounded")
        assert detector._level(0.1) == pytest.approx(0.25)
        assert 0.0 < detector._level(0.001) <= 0.5

    def test_literal_level_clipped(self):
        detector = ARModelErrorDetector(threshold=0.02, scale=0.5, level_rule="literal")
        assert detector._level(0.01) == 1.0  # 0.5 * 0.99 / 0.02 >> 1

    def test_bounded_level_vanishes_at_threshold(self):
        detector = ARModelErrorDetector(threshold=0.2, scale=1.0, level_rule="bounded")
        assert detector._level(0.2) == pytest.approx(0.0)


class TestDetection:
    def test_attack_windows_flagged(self, rng):
        stream = attack_stream(rng)
        detector = ARModelErrorDetector(
            order=4, threshold=0.15, windower=CountWindower(size=50, step=10)
        )
        report = detector.detect(stream)
        assert report.suspicious_verdicts
        flagged_mids = [v.window.mid_time for v in report.suspicious_verdicts]
        assert any(25 <= m <= 40 for m in flagged_mids)

    def test_honest_stream_mostly_clean(self, rng):
        values = np.clip(rng.normal(0.7, 0.45, size=200), 0, 1)
        stream = make_stream(np.round(values, 1), spacing=0.3)
        detector = ARModelErrorDetector(
            order=4, threshold=0.10, windower=CountWindower(size=50, step=10)
        )
        report = detector.detect(stream)
        assert len(report.suspicious_verdicts) <= 1

    def test_empty_stream(self):
        report = ARModelErrorDetector().detect(RatingStream())
        assert report.verdicts == []
        assert report.rater_suspicion == {}

    def test_short_stream_yields_no_verdicts(self):
        stream = make_stream([0.5] * 5)
        report = ARModelErrorDetector().detect(stream)
        assert report.verdicts == []

    def test_suspicion_charged_to_raters_in_window(self, rng):
        stream = attack_stream(rng)
        detector = ARModelErrorDetector(
            order=4, threshold=0.15, windower=CountWindower(size=50, step=10)
        )
        report = detector.detect(stream)
        for rater_id, value in report.rater_suspicion.items():
            assert value > 0.0
        flagged_ratings = report.flagged_rating_ids
        assert flagged_ratings
        # Every flagged rating's rater carries suspicion.
        rater_ids = {r.rater_id for r in stream if r.rating_id in flagged_ratings}
        assert rater_ids == set(report.rater_suspicion)

    def test_overlapping_windows_charge_max_not_sum(self, rng):
        # With heavily overlapping windows a rating sits in several
        # suspicious windows; its charge must be the max level, so a
        # single-rating rater's suspicion stays <= scale.
        stream = attack_stream(rng)
        detector = ARModelErrorDetector(
            order=4,
            threshold=0.15,
            scale=0.5,
            level_rule="bounded",
            windower=CountWindower(size=50, step=5),
        )
        report = detector.detect(stream)
        assert report.rater_suspicion
        assert max(report.rater_suspicion.values()) <= 0.5 + 1e-12

    def test_time_windower_supported(self, rng):
        stream = attack_stream(rng)
        detector = ARModelErrorDetector(
            order=4, threshold=0.15, windower=TimeWindower(length=10.0, step=5.0)
        )
        report = detector.detect(stream)
        assert report.verdicts

    def test_error_series_matches_verdicts(self, rng):
        stream = attack_stream(rng)
        detector = ARModelErrorDetector(
            order=4, threshold=0.15, windower=CountWindower(size=50, step=10)
        )
        mids, errors = detector.error_series(stream)
        verdicts = detector.window_errors(stream)
        np.testing.assert_allclose(errors, [v.statistic for v in verdicts])
        assert mids.size == len(verdicts)

    @pytest.mark.parametrize("method", ["covariance", "autocorrelation", "burg"])
    def test_all_ar_methods_detect(self, method, rng):
        stream = attack_stream(rng)
        detector = ARModelErrorDetector(
            order=4,
            threshold=0.15,
            method=method,
            windower=CountWindower(size=50, step=10),
        )
        report = detector.detect(stream)
        assert report.suspicious_verdicts
