"""Tests for CLI exit codes and the serve/replay subcommands."""

from __future__ import annotations

import json

import pytest

import repro.cli as cli
from repro.errors import ConfigurationError
from repro.ratings.io import write_csv, write_jsonl
from repro.ratings.stream import RatingStream
from tests.test_service_engine import make_stream


class TestExitCodes:
    def test_success_returns_zero(self, capsys):
        assert cli.main(["list"]) == 0
        assert "available experiments" in capsys.readouterr().out

    # Exit-code convention (docs/SERVICE.md): 0 success, 1 domain
    # failure (ReproError, lint findings), 2 usage/internal error.

    def test_unexpected_experiment_error_returns_two(self, monkeypatch, capsys):
        def boom(**kwargs):
            raise RuntimeError("simulated experiment crash")

        name = sorted(cli.REGISTRY)[0]
        monkeypatch.setitem(
            cli.REGISTRY, name, (boom, lambda result: "", "broken entry")
        )
        code = cli.main(["run", name])
        assert code == 2
        err = capsys.readouterr().err
        assert "simulated experiment crash" in err
        assert "RuntimeError" in err

    def test_library_error_returns_one(self, monkeypatch, capsys):
        def boom(**kwargs):
            raise ConfigurationError("bad knob")

        name = sorted(cli.REGISTRY)[0]
        monkeypatch.setitem(
            cli.REGISTRY, name, (boom, lambda result: "", "broken entry")
        )
        assert cli.main(["run", name]) == 1
        assert "bad knob" in capsys.readouterr().err

    def test_missing_trace_is_internal_error(self, capsys):
        assert cli.main(["replay", "/nonexistent/trace.csv"]) == 2
        assert "error" in capsys.readouterr().err.lower()


class TestParser:
    def test_serve_arguments(self):
        parser = cli.build_parser()
        args = parser.parse_args(
            ["serve", "--port", "9999", "--shards", "8", "--wal-dir", "/tmp/w"]
        )
        assert args.command == "serve"
        assert args.port == 9999
        assert args.shards == 8
        assert args.wal_dir == "/tmp/w"

    def test_replay_arguments(self):
        parser = cli.build_parser()
        args = parser.parse_args(["replay", "trace.csv", "--batch", "16"])
        assert args.command == "replay"
        assert args.trace == "trace.csv"
        assert args.batch == 16


class TestReplay:
    @pytest.fixture()
    def trace_csv(self, tmp_path):
        path = tmp_path / "trace.csv"
        write_csv(RatingStream.from_ratings(make_stream(120)), path)
        return path

    def test_replay_reports_throughput(self, trace_csv, capsys):
        code = cli.main(
            ["replay", str(trace_csv), "--shards", "2", "--batch", "16",
             "--window", "12", "--stride", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ratings/sec" in out
        assert "120/120 ratings accepted" in out
        assert "AR evaluations" in out

    def test_replay_jsonl_with_json_dump(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        write_jsonl(RatingStream.from_ratings(make_stream(60)), trace)
        out_json = tmp_path / "stats.json"
        code = cli.main(
            ["replay", str(trace), "--window", "12", "--json", str(out_json)]
        )
        assert code == 0
        stats = json.loads(out_json.read_text())
        assert stats["n_accepted"] == 60
        assert stats["replay_ratings_per_second"] > 0

    def test_replay_with_wal_dir_is_durable(self, trace_csv, tmp_path, capsys):
        wal_dir = tmp_path / "wal"
        code = cli.main(
            ["replay", str(trace_csv), "--window", "12", "--wal-dir", str(wal_dir)]
        )
        assert code == 0
        from repro.service.wal import wal_exists

        assert wal_exists(wal_dir)
        assert (wal_dir / "wal-000000000000.jsonl").exists()
