"""Real-process crash tests: SIGKILL the engine, recover, compare.

Unlike `tests/test_service_wal.py` (which simulates crashes by
dropping engine objects in-process), these tests run the engine in a
child interpreter and kill it with ``SIGKILL`` -- no atexit hooks, no
garbage collection, no chance to flush.  With ``wal_fsync_every=1``
every accepted rating is durable before it mutates state, so the
parent must recover **all** of them, bit-for-bit, from whatever the
kill left on disk: mid-segment, just after a rotation, or with a torn
trailing record.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.service import RatingEngine, ServiceConfig, list_segments
from tests.test_service_engine import BASE, make_stream

REPO_ROOT = Path(__file__).resolve().parents[1]
STREAM_SEED = 21
STREAM_LEN = 300

# Runs in a child interpreter; argv = wal_dir, n_submit, mode,
# store_backend, segment_entries, snapshot_every.  The child submits a
# deterministic prefix, optionally tears the WAL tail, then SIGKILLs
# itself mid-flight.
_CHILD = """
import os, signal, sys
from repro.service import RatingEngine, ServiceConfig
from tests.test_service_engine import BASE, make_stream

wal_dir, n, mode, backend, seg, snap = sys.argv[1:7]
config = ServiceConfig(
    wal_dir=wal_dir,
    store_backend=backend,
    wal_segment_entries=int(seg),
    snapshot_every=int(snap),
    wal_fsync_every=1,
    **BASE,
)
engine = RatingEngine(config)
stream = make_stream({length}, seed={seed})
engine.submit_many(stream[: int(n)])
if mode == "torn":
    # A crash mid-append: partial JSON, no trailing newline.
    with open(engine.wal.path, "ab") as fh:
        fh.write(b'{{"rating_id": 99999, "rater_id": 1, "val')
        fh.flush()
        os.fsync(fh.fileno())
os.kill(os.getpid(), signal.SIGKILL)
""".format(length=STREAM_LEN, seed=STREAM_SEED)


def _kill_child(wal_dir, n, mode="clean", backend="memory", seg=1000, snap=0):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([str(REPO_ROOT / "src"), str(REPO_ROOT)])
    proc = subprocess.run(
        [
            sys.executable,
            "-c",
            _CHILD,
            str(wal_dir),
            str(n),
            mode,
            backend,
            str(seg),
            str(snap),
        ],
        env=env,
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr


def _config(wal_dir, backend="memory", seg=1000, snap=0):
    return ServiceConfig(
        wal_dir=str(wal_dir),
        store_backend=backend,
        wal_segment_entries=seg,
        snapshot_every=snap,
        wal_fsync_every=1,
        **BASE,
    )


def _reference(tmp_path, n, backend="memory"):
    """An uninterrupted engine over the same accepted prefix."""
    engine = RatingEngine(_config(tmp_path / "reference", backend=backend))
    engine.submit_many(make_stream(STREAM_LEN, seed=STREAM_SEED)[:n])
    return engine


def _assert_equivalent(recovered, reference):
    recovered.flush()
    reference.flush()
    assert recovered.n_accepted == reference.n_accepted
    assert recovered.trust_table() == reference.trust_table()
    for product_id in range(3):
        assert recovered.score(product_id) == reference.score(product_id)
    rec, ref = recovered.snapshot_stats(), reference.snapshot_stats()
    for key in ("n_accepted", "ar_evaluations", "windows_flagged",
                "trust_updates", "n_products", "n_raters"):
        assert rec[key] == ref[key], key


@pytest.mark.parametrize("backend", ["memory", "tiered"])
class TestSigkill:
    def test_kill_mid_segment(self, tmp_path, backend):
        """SIGKILL partway through a segment, with periodic snapshots
        (and, for tiered, segment GC) having run."""
        crash_dir = tmp_path / "crash"
        _kill_child(crash_dir, n=137, backend=backend, seg=25, snap=40)

        recovered = RatingEngine.recover(crash_dir)
        _assert_equivalent(recovered, _reference(tmp_path, 137, backend))
        recovered.close()

    def test_kill_right_after_rotation(self, tmp_path, backend):
        """The dangerous instant: a fresh segment holding one record."""
        crash_dir = tmp_path / "crash"
        _kill_child(crash_dir, n=61, backend=backend, seg=20)

        assert [s for s, _ in list_segments(crash_dir)] == [0, 20, 40, 60]
        recovered = RatingEngine.recover(
            crash_dir, config=_config(crash_dir, backend=backend, seg=20)
        )
        _assert_equivalent(recovered, _reference(tmp_path, 61, backend))
        recovered.close()

    def test_kill_with_torn_tail(self, tmp_path, backend):
        """A partial trailing record is dropped exactly once; every
        fsynced rating before it survives."""
        crash_dir = tmp_path / "crash"
        _kill_child(crash_dir, n=90, mode="torn", backend=backend, seg=40)

        recovered = RatingEngine.recover(
            crash_dir, config=_config(crash_dir, backend=backend, seg=40)
        )
        _assert_equivalent(recovered, _reference(tmp_path, 90, backend))
        recovered.close()

        # The repair truncated the torn bytes away: a second open sees
        # a clean log with the same entry count.
        from repro.service import WriteAheadLog

        wal = WriteAheadLog(crash_dir, segment_entries=40)
        assert wal.n_entries == 90
        wal.close()

    def test_recovered_engine_continues_the_stream(self, tmp_path, backend):
        """Recovery is a working engine, not a read-only reconstruction:
        feeding the rest of the stream matches an uninterrupted run."""
        crash_dir = tmp_path / "crash"
        _kill_child(crash_dir, n=150, backend=backend, seg=30, snap=60)

        stream = make_stream(STREAM_LEN, seed=STREAM_SEED)
        recovered = RatingEngine.recover(crash_dir)
        recovered.submit_many(stream[150:])

        reference = RatingEngine(_config(tmp_path / "ref", backend=backend))
        reference.submit_many(stream)
        _assert_equivalent(recovered, reference)
        recovered.close()
