"""Tests for the robust-statistics aggregators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.methods import ModifiedWeightedAverage, SimpleAverage
from repro.aggregation.robust import MedianAggregator, TrimmedMeanAggregator
from repro.errors import ConfigurationError, EmptyWindowError


class TestMedian:
    def test_odd_count(self):
        assert MedianAggregator().aggregate([0.1, 0.9, 0.5], [1, 1, 1]) == 0.5

    def test_even_count_interpolates(self):
        assert MedianAggregator().aggregate([0.4, 0.6], [1, 1]) == pytest.approx(0.5)

    def test_ignores_trust(self):
        agg = MedianAggregator()
        assert agg.aggregate([0.2, 0.8], [0.0, 1.0]) == agg.aggregate(
            [0.2, 0.8], [1.0, 0.0]
        )

    def test_resists_minority_outliers(self):
        values = [0.7] * 9 + [0.0]
        assert MedianAggregator().aggregate(values, [1.0] * 10) == pytest.approx(0.7)

    def test_empty_rejected(self):
        with pytest.raises(EmptyWindowError):
            MedianAggregator().aggregate([], [])


class TestTrimmedMean:
    def test_trims_both_tails(self):
        values = [0.0] + [0.5] * 8 + [1.0]
        result = TrimmedMeanAggregator(trim=0.1).aggregate(values, [1.0] * 10)
        assert result == pytest.approx(0.5)

    def test_zero_trim_is_mean(self):
        values = [0.2, 0.4, 0.9]
        agg = TrimmedMeanAggregator(trim=0.0)
        assert agg.aggregate(values, [1] * 3) == pytest.approx(np.mean(values))

    def test_small_samples_fall_back_to_mean(self):
        agg = TrimmedMeanAggregator(trim=0.2)
        assert agg.aggregate([0.0, 1.0], [1, 1]) == pytest.approx(0.5)

    def test_invalid_trim_rejected(self):
        with pytest.raises(ConfigurationError):
            TrimmedMeanAggregator(trim=0.5)
        with pytest.raises(ConfigurationError):
            TrimmedMeanAggregator(trim=-0.1)

    def test_bounded_by_value_range(self, rng):
        values = rng.uniform(0, 1, size=30)
        result = TrimmedMeanAggregator(trim=0.2).aggregate(values, np.ones(30))
        assert values.min() <= result <= values.max()


class TestRobustVsTrustGated:
    def test_near_majority_collusion_defeats_robust_statistics(self, rng):
        # 50/50 mix: colluders at +0.2, not value-outliers.  Robust
        # location estimators track the contaminated center; the
        # trust-gated average (with informative trust) does not.
        honest = rng.normal(0.6, 0.05, size=20)
        colluders = rng.normal(0.8, 0.02, size=20)
        values = np.clip(np.concatenate((honest, colluders)), 0, 1)
        trusts = np.concatenate((np.full(20, 0.9), np.full(20, 0.3)))
        desired = 0.6
        median_err = abs(MedianAggregator().aggregate(values, trusts) - desired)
        trimmed_err = abs(
            TrimmedMeanAggregator(0.1).aggregate(values, trusts) - desired
        )
        gated_err = abs(
            ModifiedWeightedAverage().aggregate(values, trusts) - desired
        )
        assert gated_err < median_err
        assert gated_err < trimmed_err

    def test_majority_collusion_breaks_median_worse_than_mean(self, rng):
        # With colluders at 2:1, the median sits inside the collusion
        # cluster -- worse than the mean, which still blends.
        honest = rng.normal(0.8, 0.05, size=10)
        colluders = rng.normal(0.4, 0.02, size=20)
        values = np.clip(np.concatenate((honest, colluders)), 0, 1)
        trusts = np.ones(30)
        desired = 0.8
        median_err = abs(MedianAggregator().aggregate(values, trusts) - desired)
        mean_err = abs(SimpleAverage().aggregate(values, trusts) - desired)
        assert median_err > mean_err
