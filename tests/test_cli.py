"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import REGISTRY


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_options(self):
        args = build_parser().parse_args(
            ["run", "table1", "--seed", "7", "--runs", "10"]
        )
        assert args.experiment == "table1"
        assert args.seed == 7
        assert args.runs == 10

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_run_table1(self, capsys):
        assert main(["run", "table1", "--runs", "20"]) == 0
        out = capsys.readouterr().out
        assert "modified weighted average" in out

    def test_run_detection_small(self, capsys):
        assert main(["run", "detection", "--runs", "5"]) == 0
        assert "Detection Ratio" in capsys.readouterr().out

    def test_run_fig4(self, capsys):
        assert main(["run", "fig4"]) == 0
        assert "model error" in capsys.readouterr().out
