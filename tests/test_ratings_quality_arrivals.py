"""Tests for quality profiles and arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ratings.arrivals import nonhomogeneous_arrival_times, poisson_arrival_times
from repro.ratings.quality import ConstantQuality, LinearRampQuality, PiecewiseQuality


class TestQualityProfiles:
    def test_constant(self):
        q = ConstantQuality(0.6)
        assert q(0.0) == q(1e6) == 0.6

    def test_constant_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantQuality(1.2)

    def test_ramp_interpolates(self):
        q = LinearRampQuality(0.7, 0.8, 0.0, 60.0)
        assert q(0.0) == 0.7
        assert q(60.0) == 0.8
        assert q(30.0) == pytest.approx(0.75)

    def test_ramp_saturates_outside(self):
        q = LinearRampQuality(0.7, 0.8, 10.0, 20.0)
        assert q(0.0) == 0.7
        assert q(100.0) == 0.8

    def test_ramp_can_decrease(self):
        q = LinearRampQuality(0.8, 0.4, 0.0, 10.0)
        assert q(5.0) == pytest.approx(0.6)

    def test_ramp_bad_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearRampQuality(0.7, 0.8, 10.0, 10.0)

    def test_piecewise_steps(self):
        q = PiecewiseQuality(breakpoints=[10.0, 20.0], values=[0.3, 0.6, 0.9])
        assert q(5.0) == 0.3
        assert q(10.0) == 0.6
        assert q(25.0) == 0.9

    def test_piecewise_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            PiecewiseQuality(breakpoints=[1.0], values=[0.5])

    def test_piecewise_unsorted_rejected(self):
        with pytest.raises(ConfigurationError):
            PiecewiseQuality(breakpoints=[5.0, 2.0], values=[0.1, 0.2, 0.3])


class TestPoissonArrivals:
    def test_count_matches_rate(self, rng):
        times = poisson_arrival_times(rate=5.0, start=0.0, end=100.0, rng=rng)
        assert times.size == pytest.approx(500, rel=0.2)

    def test_times_sorted_and_bounded(self, rng):
        times = poisson_arrival_times(rate=3.0, start=10.0, end=20.0, rng=rng)
        assert np.all(np.diff(times) >= 0)
        assert np.all((times >= 10.0) & (times < 20.0))

    def test_zero_rate(self, rng):
        assert poisson_arrival_times(0.0, 0.0, 10.0, rng).size == 0

    def test_empty_interval(self, rng):
        assert poisson_arrival_times(5.0, 3.0, 3.0, rng).size == 0

    def test_negative_rate_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            poisson_arrival_times(-1.0, 0.0, 1.0, rng)

    def test_inverted_interval_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            poisson_arrival_times(1.0, 5.0, 4.0, rng)


class TestNonhomogeneousArrivals:
    def test_thinning_respects_rate_shape(self, rng):
        # Rate 10 in the first half, 0 in the second half.
        rate_fn = lambda t: 10.0 if t < 50.0 else 0.0
        times = nonhomogeneous_arrival_times(rate_fn, 10.0, 0.0, 100.0, rng)
        assert np.all(times < 50.0)
        assert times.size == pytest.approx(500, rel=0.2)

    def test_constant_rate_matches_homogeneous(self, rng):
        times = nonhomogeneous_arrival_times(lambda t: 4.0, 4.0, 0.0, 100.0, rng)
        assert times.size == pytest.approx(400, rel=0.25)

    def test_rate_above_bound_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            nonhomogeneous_arrival_times(lambda t: 20.0, 10.0, 0.0, 10.0, rng)
