"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ratings.models import Product, RaterClass, RaterProfile, Rating
from repro.ratings.scales import ELEVEN_LEVEL
from repro.ratings.stream import RatingStream
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; tests must not share state across cases."""
    return np.random.default_rng(12345)


def make_rating(
    rating_id: int,
    value: float,
    time: float,
    rater_id: int | None = None,
    product_id: int = 0,
    unfair: bool = False,
) -> Rating:
    """Terse rating constructor for tests."""
    return Rating(
        rating_id=rating_id,
        rater_id=rater_id if rater_id is not None else rating_id,
        product_id=product_id,
        value=value,
        time=time,
        unfair=unfair,
    )


def make_stream(values, start_time: float = 0.0, spacing: float = 1.0) -> RatingStream:
    """A stream of one rating per value, evenly spaced in time."""
    ratings = [
        make_rating(rating_id=i, value=float(v), time=start_time + i * spacing)
        for i, v in enumerate(values)
    ]
    return RatingStream.from_ratings(ratings)


@pytest.fixture
def small_stream() -> RatingStream:
    """Ten ratings around 0.7 with one obvious outlier at 0.0."""
    values = [0.7, 0.8, 0.7, 0.6, 0.7, 0.0, 0.8, 0.7, 0.6, 0.7]
    return make_stream(values)


@pytest.fixture(scope="session")
def illustrative_trace():
    """One paper-parameter illustrative trace, shared read-only."""
    return generate_illustrative(IllustrativeConfig(), np.random.default_rng(7))
