"""Tests for the online detector ensemble subsystem.

Covers the source protocol and combiners, the two new sources
(co-rating graph, iterative filtering), bounded-memory eviction, the
per-source threshold config (with the deprecated
``detector_threshold`` alias), engine integration, and -- the
durability contract -- bit-for-bit crash recovery of ensemble state
under the 8-thread race pattern.
"""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro.detectors.online import OnlineARDetector
from repro.errors import ConfigurationError
from repro.ratings.models import Rating
from repro.service import RatingEngine, ServiceConfig
from repro.service.ensemble import (
    COMBINERS,
    ARSuspicionSource,
    CoRatingGraphSource,
    IterativeFilterSource,
    build_sources,
    combine_max,
    combine_weighted_mean,
    unit_suspicion,
)

THREE_SOURCES = ("ar", "cograph", "iterfilter")


def ring_stream(
    n_products=6,
    n_honest=10,
    ring=(100, 101, 102, 103),
    rounds=6,
    seed=0,
    target=0.95,
):
    """Honest raters around 0.55 plus a colluding ring pushing ``target``.

    Every rater visits every product each round, so co-rating edges
    accumulate; the ring's values agree tightly while honest values
    carry noise.
    """
    rng = np.random.default_rng(seed)
    ratings = []
    rating_id = 0
    t = 0.0
    for _ in range(rounds):
        for pid in range(n_products):
            for rid in range(n_honest):
                value = float(np.clip(0.55 + rng.normal(0, 0.08), 0, 1))
                ratings.append(
                    Rating(rating_id, rid, pid, round(value, 3), time=t)
                )
                rating_id += 1
                t += 1.0
            for rid in ring:
                value = float(np.clip(target + rng.normal(0, 0.01), 0, 1))
                ratings.append(
                    Rating(rating_id, rid, pid, round(value, 3), time=t)
                )
                rating_id += 1
                t += 1.0
    return ratings


class TestProtocolAndCombiners:
    def test_unit_suspicion_validates(self):
        assert unit_suspicion(0.0) == 0.0
        assert unit_suspicion(1.0) == 1.0
        for bad in (-0.01, 1.01):
            with pytest.raises(ConfigurationError):
                unit_suspicion(bad)

    def test_weighted_mean_single_source_is_identity(self):
        mass = {1: 0.25, 2: 3.0}
        out = combine_weighted_mean({"ar": mass}, {"ar": 1.0})
        assert out == mass  # bit-for-bit: the AR-only compatibility hinge

    def test_weighted_mean_averages_over_all_enabled(self):
        per_source = {"a": {1: 1.0}, "b": {1: 0.0, 2: 2.0}}
        out = combine_weighted_mean(per_source, {"a": 1.0, "b": 1.0})
        # Source b contributed 0 for rater 1; denominator still 2.
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0)

    def test_weighted_mean_rejects_zero_total_weight(self):
        with pytest.raises(ConfigurationError):
            combine_weighted_mean({"a": {1: 1.0}}, {"a": 0.0})

    def test_max_combiner(self):
        per_source = {"a": {1: 1.0, 2: 0.2}, "b": {1: 0.4, 2: 0.9}}
        out = combine_max(per_source, {"a": 0.5, "b": 1.0})
        assert out[1] == pytest.approx(0.5)  # 0.5*1.0 > 1.0*0.4
        assert out[2] == pytest.approx(0.9)

    def test_combiner_registry(self):
        assert set(COMBINERS) == {"weighted_mean", "max"}


class TestConfigThresholds:
    def test_detector_threshold_is_deprecated_alias_for_ar(self):
        config = ServiceConfig(detector_threshold=0.3)
        assert config.source_thresholds == {"ar": 0.3}

    def test_per_source_thresholds_override(self):
        config = ServiceConfig(
            ensemble_sources=THREE_SOURCES,
            ensemble_thresholds=(0.15, None, 0.6),
        )
        thresholds = config.source_thresholds
        assert thresholds["ar"] == 0.15
        assert thresholds["cograph"] == 0.5  # source default
        assert thresholds["iterfilter"] == 0.6

    def test_pre_ensemble_config_dict_still_loads(self):
        # A dict written before the ensemble existed: no ensemble_* keys.
        old = {
            "n_shards": 2,
            "batch_max_ratings": 8,
            "detector_threshold": 0.2,
        }
        config = ServiceConfig.from_dict(old)
        assert config.ensemble_sources == ("ar",)
        assert config.source_thresholds == {"ar": 0.2}

    def test_from_dict_coerces_json_lists(self):
        config = ServiceConfig(
            ensemble_sources=THREE_SOURCES, ensemble_weights=(1.0, 2.0, 3.0)
        )
        data = config.to_dict()
        data["ensemble_sources"] = list(data["ensemble_sources"])
        data["ensemble_weights"] = list(data["ensemble_weights"])
        assert ServiceConfig.from_dict(data) == config

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceConfig(
                ensemble_sources=("ar", "cograph"), ensemble_weights=(1.0,)
            )

    def test_build_sources_in_config_order(self):
        config = ServiceConfig(ensemble_sources=("iterfilter", "ar"))
        assert list(build_sources(config)) == ["iterfilter", "ar"]


class TestBoundedMemory:
    def test_detector_lru_eviction(self):
        evictions = []
        detector = OnlineARDetector(
            order=2,
            window_size=8,
            stride=2,
            threshold=0.2,
            max_raters_per_product=10,
            on_eviction=evictions.append,
        )
        for i in range(50):
            detector.observe(Rating(i, i % 25, 0, 0.5, time=float(i)))
        assert len(detector._rater_by_position) <= 10
        assert detector.n_evictions == 40
        assert sum(evictions) == 40

    def test_detector_cap_validated(self):
        with pytest.raises(ConfigurationError):
            OnlineARDetector(order=2, window_size=8, max_raters_per_product=0)

    def test_cograph_product_lru_eviction(self):
        source = CoRatingGraphSource(max_raters_per_product=5)
        for rid in range(12):
            source.observe(Rating(rid, rid, 0, 0.5, time=float(rid)))
        assert len(source._products[0]) == 5
        assert source.n_evictions == 7

    def test_cograph_edge_cap(self):
        source = CoRatingGraphSource(max_raters_per_product=64, max_edges=10)
        # 8 raters x all pairs = 28 edges via repeated co-rating.
        t = 0.0
        for pid in range(3):
            for rid in range(8):
                source.observe(Rating(int(t), rid, pid, 0.5, time=t))
                t += 1.0
        assert len(source._edges) > 10
        source.flush()
        assert len(source._edges) <= 10

    def test_engine_eviction_metric(self):
        config = ServiceConfig(
            n_shards=1,
            batch_max_ratings=1000,
            detector_window=12,
            detector_order=2,
            detector_stride=3,
            max_raters_per_product=5,
            ensemble_sources=("ar", "cograph"),
        )
        engine = RatingEngine(config)
        for i in range(60):
            engine.submit(Rating(i, i % 30, 0, 0.5, time=float(i)))
        total = sum(
            s["n_evictions"] for s in engine.ensemble_stats()["sources"].values()
        )
        assert total > 0
        metric = sum(
            engine.metrics.counter(
                "repro_ensemble_evictions_total", labels={"source": name}
            ).value
            for name in ("ar", "cograph")
        )
        assert metric == total


class TestCoRatingGraphSource:
    def test_ring_members_charged_honest_not(self):
        source = CoRatingGraphSource(threshold=0.5)
        for rating in ring_stream():
            source.observe(rating)
        mass = source.flush()
        ring = {100, 101, 102, 103}
        assert ring <= set(mass), f"ring not fully charged: {sorted(mass)}"
        honest_mass = sum(mass.get(rid, 0.0) for rid in range(10))
        ring_mass = sum(mass[rid] for rid in ring)
        assert ring_mass > honest_mass

    def test_flush_clears_counts(self):
        source = CoRatingGraphSource(threshold=0.5)
        for rating in ring_stream(rounds=4):
            source.observe(rating)
        first = source.flush()
        assert first
        # No new ratings: nothing left to charge.
        assert source.flush() == {}

    def test_score_every_skips_flushes(self):
        source = CoRatingGraphSource(threshold=0.5, score_every=3)
        for rating in ring_stream(rounds=4):
            source.observe(rating)
        assert source.flush() == {}
        assert source.flush() == {}
        assert source.flush()  # third flush scores

    def test_state_roundtrip_bit_for_bit(self):
        stream = ring_stream(rounds=5)
        cut = len(stream) // 2
        source = CoRatingGraphSource(threshold=0.5)
        for rating in stream[:cut]:
            source.observe(rating)
        restored = CoRatingGraphSource(threshold=0.5)
        restored.load_state(source.state_dict())
        assert restored.state_dict() == source.state_dict()
        for rating in stream[cut:]:
            source.observe(rating)
            restored.observe(rating)
        assert restored.flush() == source.flush()
        assert restored.state_dict() == source.state_dict()


class TestIterativeFilterSource:
    def test_outlier_rater_charged(self):
        source = IterativeFilterSource(threshold=0.5)
        rng = np.random.default_rng(1)
        t = 0.0
        rating_id = 0
        for pid in range(4):
            for _ in range(12):
                for rid in range(6):
                    value = 0.6 + rng.normal(0, 0.03) if rid != 5 else 0.05
                    source.observe(
                        Rating(
                            rating_id,
                            rid,
                            pid,
                            float(np.clip(value, 0, 1)),
                            time=t,
                        )
                    )
                    rating_id += 1
                    t += 1.0
        mass = source.flush()
        assert 5 in mass
        assert all(mass.get(rid, 0.0) < mass[5] for rid in range(5))

    def test_state_roundtrip_bit_for_bit(self):
        stream = ring_stream(rounds=5, seed=7)
        cut = len(stream) // 3
        source = IterativeFilterSource(threshold=0.3)
        for rating in stream[:cut]:
            source.observe(rating)
        source.flush()  # persist some learned weights
        restored = IterativeFilterSource(threshold=0.3)
        restored.load_state(source.state_dict())
        for rating in stream[cut:]:
            source.observe(rating)
            restored.observe(rating)
        assert restored.flush() == source.flush()
        assert restored.state_dict() == source.state_dict()


class TestEngineIntegration:
    def make_engine(self, **overrides):
        base = dict(
            n_shards=2,
            batch_max_ratings=16,
            detector_window=12,
            detector_order=2,
            detector_stride=3,
            detector_threshold=0.2,
            ensemble_sources=THREE_SOURCES,
        )
        base.update(overrides)
        return RatingEngine(ServiceConfig(**base))

    def test_three_source_engine_runs_and_charges(self):
        engine = self.make_engine()
        engine.submit_many(ring_stream())
        engine.flush()
        suspicion = engine.suspicion_table()
        assert suspicion, "ensemble charged nobody on a collusion stream"
        ring_mass = sum(suspicion.get(rid, 0.0) for rid in (100, 101, 102, 103))
        assert ring_mass > 0

    def test_ensemble_stats_shape(self):
        engine = self.make_engine()
        stats = engine.ensemble_stats()
        assert stats["combiner"] == "weighted_mean"
        assert list(stats["sources"]) == list(THREE_SOURCES)
        for entry in stats["sources"].values():
            for key in ("weight", "threshold", "period", "n_evictions"):
                assert key in entry
        assert engine.snapshot_stats()["ensemble"] == stats

    def test_flush_latency_and_suspicion_metrics_exist(self):
        engine = self.make_engine()
        engine.submit_many(ring_stream(rounds=2))
        engine.flush()
        for name in THREE_SOURCES:
            histogram = engine.metrics.histogram(
                "repro_ensemble_flush_seconds", labels={"source": name}
            )
            assert histogram.count > 0
        rendered = engine.metrics.render()
        assert 'repro_ensemble_suspicion{source="cograph"}' in rendered

    def test_max_combiner_engine(self):
        engine = self.make_engine(ensemble_combiner="max")
        engine.submit_many(ring_stream(rounds=3))
        engine.flush()
        assert engine.suspicion_table()

    def test_ar_only_suspicion_matches_trust_failures(self):
        """Default config: suspicion_table mirrors the AR charges."""
        engine = RatingEngine(
            ServiceConfig(
                n_shards=1,
                batch_max_ratings=10_000,
                detector_window=12,
                detector_order=2,
                detector_stride=3,
                detector_threshold=0.2,
            )
        )
        rng = np.random.default_rng(3)
        for i in range(150):
            value = float(
                np.clip(0.6 + 0.25 * math.sin(i / 7.0) + rng.normal(0, 0.05), 0, 1)
            )
            engine.submit(Rating(i, int(rng.integers(0, 10)), 0, round(value, 3), time=float(i)))
        engine.flush()
        suspicion = engine.suspicion_table()
        assert suspicion
        for rid, mass in suspicion.items():
            record = engine.trust_manager.record(rid)
            assert record.failures == pytest.approx(
                engine.config.trust_badness_weight * mass
            )


N_THREADS = 8
PER_THREAD = 100


def _thread_ratings(thread_id, seed):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(PER_THREAD):
        value = 0.55 + 0.3 * math.sin((i + thread_id) / 9.0)
        value = float(np.clip(value + rng.normal(0, 0.05), 0, 1))
        out.append(
            Rating(
                rating_id=thread_id * PER_THREAD + i,
                rater_id=int(rng.integers(0, 12)),
                product_id=thread_id,
                value=round(value, 3),
                time=float(i),
            )
        )
    return out


def _ensemble_config(wal_dir):
    return ServiceConfig(
        n_shards=1,
        batch_max_ratings=16,
        detector_window=12,
        detector_order=2,
        detector_stride=3,
        detector_threshold=0.2,
        ensemble_sources=THREE_SOURCES,
        trust_forgetting_factor=1.0,
        wal_dir=str(wal_dir),
    )


def _ensemble_state(engine):
    """Per-shard per-source state, for exact recovery comparison."""
    out = []
    for shard in engine._shards:
        with shard.lock:
            out.append(
                {name: source.state_dict() for name, source in shard.sources.items()}
            )
    return out


class TestEnsembleCrashRecovery:
    def test_eight_thread_crash_recovery_bit_for_bit(self, tmp_path):
        """Concurrent 3-source ingest, then WAL replay: exact state match.

        Extends the race-test pattern: the live engine's trust table,
        suspicion table, AND every source's state_dict must be
        reproduced bit-for-bit by a single-threaded replay of its own
        WAL.
        """
        engine = RatingEngine(_ensemble_config(tmp_path / "live"))
        batches = [_thread_ratings(t, seed=100 + t) for t in range(N_THREADS)]
        barrier = threading.Barrier(N_THREADS)

        def worker(thread_id):
            barrier.wait()
            for rating in batches[thread_id]:
                engine.submit(rating)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        engine.flush()

        live_trust = engine.trust_table()
        live_suspicion = engine.suspicion_table()
        live_sources = _ensemble_state(engine)
        engine.close()

        recovered = RatingEngine.recover(
            tmp_path / "live", config=_ensemble_config(tmp_path / "live")
        )
        recovered.flush()
        assert recovered.trust_table() == live_trust
        assert recovered.suspicion_table() == live_suspicion
        assert _ensemble_state(recovered) == live_sources
        recovered.close()

    def test_kill_mid_flush_after_wal_append(self, tmp_path):
        """A rating logged but never applied must survive via replay.

        Simulates dying between the WAL append and the in-memory
        apply/flush: the abandoned engine's WAL (with one extra
        appended rating) is recovered and continued; an uninterrupted
        reference engine over the same total stream must match
        bit-for-bit.
        """
        stream = ring_stream(rounds=3, seed=11)
        cut = (len(stream) // 16) * 16 + 5  # mid-batch: pending state exists
        doomed = RatingEngine(_ensemble_config(tmp_path / "doomed"))
        for rating in stream[:cut]:
            doomed.submit(rating)
        # Crash point: the next rating reaches the WAL, not the engine.
        doomed.wal.append(stream[cut])
        doomed.wal.sync()
        doomed.wal.close()  # releases the owner lock, like a dead process
        del doomed  # no flush, no engine close -- the "kill"

        recovered = RatingEngine.recover(
            tmp_path / "doomed", config=_ensemble_config(tmp_path / "doomed")
        )
        for rating in stream[cut + 1 :]:
            recovered.submit(rating)
        recovered.flush()

        reference = RatingEngine(_ensemble_config(tmp_path / "reference"))
        for rating in stream:
            reference.submit(rating)
        reference.flush()

        assert recovered.trust_table() == reference.trust_table()
        assert recovered.suspicion_table() == reference.suspicion_table()
        assert _ensemble_state(recovered) == _ensemble_state(reference)
        recovered.close()
        reference.close()

    def test_snapshot_roundtrip_with_ensemble_state(self, tmp_path):
        stream = ring_stream(rounds=3, seed=5)
        cut = len(stream) * 2 // 3
        live = RatingEngine(_ensemble_config(tmp_path / "snap"))
        for rating in stream[:cut]:
            live.submit(rating)
        live.snapshot()
        for rating in stream[cut:]:
            live.submit(rating)
        live.flush()
        live_state = (
            live.trust_table(),
            live.suspicion_table(),
            _ensemble_state(live),
        )
        live.close()

        recovered = RatingEngine.recover(tmp_path / "snap")
        recovered.flush()
        assert (
            recovered.trust_table(),
            recovered.suspicion_table(),
            _ensemble_state(recovered),
        ) == live_state
        recovered.close()

    def test_version1_snapshot_upgrades(self, tmp_path):
        """A pre-ensemble (version-1) snapshot loads into an AR source."""
        config = ServiceConfig(
            n_shards=1,
            batch_max_ratings=16,
            detector_window=12,
            detector_order=2,
            detector_stride=3,
            detector_threshold=0.2,
            wal_dir=str(tmp_path / "v1"),
        )
        engine = RatingEngine(config)
        stream = ring_stream(rounds=2, seed=9)
        for rating in stream:
            engine.submit(rating)
        state = engine._state_dict()
        # Downgrade to the version-1 layout by hand.
        v1_shards = []
        for shard_state in state["shards"]:
            ar_state = shard_state["sources"]["ar"]
            products = {}
            for pid, product_state in ar_state["products"].items():
                products[pid] = {
                    **product_state,
                    "last_time": shard_state["last_time"][pid],
                }
            v1_shards.append(
                {
                    "products": products,
                    "pending_provided": shard_state["pending_provided"],
                    "pending_suspicion": ar_state["pending_mass"],
                    "pending_suspicious": ar_state["pending_counts"],
                    "since_flush": shard_state["since_flush"],
                    "n_accepted": shard_state["n_accepted"],
                    "n_rejected": shard_state["n_rejected"],
                    "n_evaluations": shard_state["n_evaluations"],
                    "n_flagged": shard_state["n_flagged"],
                    "store_n_ratings": shard_state["store_n_ratings"],
                }
            )
        v1_state = {**state, "version": 1, "shards": v1_shards}
        v1_state.pop("suspicion_totals")

        engine.wal.close()  # release the WAL so `fresh` can open it
        fresh = RatingEngine(config)
        for rating in stream:  # rebuild the store prefix as recover() does
            fresh._restore_rating(rating)
        fresh._load_state(v1_state)
        assert _ensemble_state(fresh)[0]["ar"] == _ensemble_state(engine)[0]["ar"]
        assert fresh.trust_table() == engine.trust_table()
        engine.close()
