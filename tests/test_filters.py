"""Tests for rating filters (feature extraction I)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.filters.base import NullFilter, WindowedFilter
from repro.filters.beta_quantile import BetaQuantileFilter, moment_matched_beta
from repro.filters.robust import IQRFilter, ZScoreFilter
from repro.ratings.stream import RatingStream
from tests.conftest import make_rating, make_stream


class TestNullFilter:
    def test_keeps_everything(self, small_stream):
        result = NullFilter().filter(small_stream)
        assert len(result.kept) == len(small_stream)
        assert result.n_removed == 0


class TestMomentMatchedBeta:
    def test_mean_preserved(self, rng):
        values = rng.beta(4.0, 2.0, size=5000)
        alpha, beta = moment_matched_beta(values)
        assert alpha / (alpha + beta) == pytest.approx(np.mean(values), abs=0.01)

    def test_recovers_parameters(self, rng):
        values = rng.beta(5.0, 3.0, size=50000)
        alpha, beta = moment_matched_beta(values)
        assert alpha == pytest.approx(5.0, rel=0.15)
        assert beta == pytest.approx(3.0, rel=0.15)

    def test_degenerate_consensus(self):
        alpha, beta = moment_matched_beta(np.full(10, 0.7))
        assert alpha / (alpha + beta) == pytest.approx(0.7, abs=0.01)
        assert alpha + beta > 1e5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            moment_matched_beta(np.empty(0))

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            moment_matched_beta(np.array([0.5, 1.2]))


class TestBetaQuantileFilter:
    def test_obvious_outlier_removed(self, small_stream):
        result = BetaQuantileFilter(sensitivity=0.1).filter(small_stream)
        removed_values = [r.value for r in result.removed]
        assert 0.0 in removed_values

    def test_consensus_kept(self):
        stream = make_stream([0.7] * 20)
        result = BetaQuantileFilter().filter(stream)
        assert result.n_removed == 0

    def test_small_windows_passed_through(self):
        stream = make_stream([0.9, 0.1, 0.5])
        result = BetaQuantileFilter(min_ratings=5).filter(stream)
        assert result.n_removed == 0

    def test_moderate_bias_collusion_survives(self, rng):
        # The paper's point: colluders one level above the majority are
        # not outliers by value.
        honest = list(np.clip(rng.normal(0.5, 0.2, size=60), 0, 1))
        colluders = list(np.clip(rng.normal(0.65, 0.05, size=40), 0, 1))
        stream = make_stream(honest + colluders)
        result = BetaQuantileFilter(sensitivity=0.1).filter(stream)
        colluder_ids = set(range(60, 100))
        removed_colluders = colluder_ids & set(result.removed_ids)
        assert len(removed_colluders) < 5

    def test_sensitivity_bounds_removal_mass(self, rng):
        values = rng.uniform(0, 1, size=500)
        stream = make_stream(values)
        result = BetaQuantileFilter(sensitivity=0.05).filter(stream)
        assert result.n_removed <= 0.12 * len(stream)

    def test_fitted_mode_interior_outlier(self, rng):
        values = list(np.clip(rng.normal(0.5, 0.08, size=50), 0, 1)) + [0.95]
        stream = make_stream(values)
        result = BetaQuantileFilter(sensitivity=0.05, mode="fitted").filter(stream)
        assert 50 in result.removed_ids

    def test_fitted_mode_releases_u_shaped_bounds(self, rng):
        # High-variance clipped ratings produce mass at the extremes;
        # the fitted mode must not call the modes outliers.
        values = np.clip(rng.normal(0.7, 0.45, size=200), 0, 1)
        stream = make_stream(values)
        result = BetaQuantileFilter(sensitivity=0.1, mode="fitted").filter(stream)
        removed_top = [r for r in result.removed if r.value == 1.0]
        assert not removed_top

    def test_invalid_sensitivity_rejected(self):
        for q in (0.0, 0.5, -0.1):
            with pytest.raises(ConfigurationError):
                BetaQuantileFilter(sensitivity=q)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            BetaQuantileFilter(mode="magic")

    def test_result_partition_is_exact(self, small_stream):
        result = BetaQuantileFilter().filter(small_stream)
        kept_ids = {r.rating_id for r in result.kept}
        removed_ids = set(result.removed_ids)
        assert kept_ids | removed_ids == {r.rating_id for r in small_stream}
        assert not kept_ids & removed_ids


class TestZScoreFilter:
    def test_outlier_removed(self, small_stream):
        result = ZScoreFilter(k=2.0).filter(small_stream)
        assert any(r.value == 0.0 for r in result.removed)

    def test_uniform_window_untouched(self):
        stream = make_stream([0.5] * 10)
        assert ZScoreFilter().filter(stream).n_removed == 0

    def test_small_window_passed(self):
        stream = make_stream([0.9, 0.1])
        assert ZScoreFilter().filter(stream).n_removed == 0

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            ZScoreFilter(k=0.0)


class TestIQRFilter:
    def test_outlier_removed(self):
        stream = make_stream([0.5, 0.52, 0.48, 0.51, 0.49, 0.5, 0.99])
        result = IQRFilter(k=1.5).filter(stream)
        assert any(r.value == 0.99 for r in result.removed)

    def test_needs_four_ratings(self):
        stream = make_stream([0.1, 0.9, 0.5])
        assert IQRFilter().filter(stream).n_removed == 0


class TestWindowedFilter:
    def test_filters_within_windows_independently(self, rng):
        # Window 1: tight around 0.3 with an outlier at 0.9.
        # Window 2: tight around 0.9 -- 0.9 is normal there.
        w1_values = [0.3, 0.31, 0.29, 0.3, 0.32, 0.28, 0.3, 0.31, 0.29, 0.9]
        w2_values = [0.9, 0.91, 0.89, 0.9, 0.92, 0.88, 0.9, 0.91, 0.89, 0.9]
        ratings = [
            make_rating(i, v, time=float(i) * 0.1) for i, v in enumerate(w1_values)
        ] + [
            make_rating(100 + i, v, time=10.0 + i * 0.1)
            for i, v in enumerate(w2_values)
        ]
        stream = RatingStream.from_ratings(ratings)
        windowed = WindowedFilter(
            ZScoreFilter(k=2.0), window_length=10.0, origin=0.0
        )
        result = windowed.filter(stream)
        removed_values = [r.value for r in result.removed]
        assert removed_values == [0.9]

    def test_empty_stream(self):
        result = WindowedFilter(ZScoreFilter(), window_length=10.0).filter(
            RatingStream()
        )
        assert result.n_removed == 0

    def test_min_count_skips_sparse_windows(self):
        ratings = [make_rating(0, 0.9, time=0.5), make_rating(1, 0.1, time=25.0)]
        stream = RatingStream.from_ratings(ratings)
        windowed = WindowedFilter(ZScoreFilter(), window_length=10.0, min_count=3)
        assert windowed.filter(stream).n_removed == 0
