"""Tests for the CUSUM and variance-ratio detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.changepoint import CusumDetector, VarianceRatioDetector
from repro.errors import ConfigurationError
from repro.ratings.stream import RatingStream
from repro.signal.windows import CountWindower
from tests.conftest import make_stream


class TestCusumConfiguration:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CusumDetector(threshold=0.0)
        with pytest.raises(ConfigurationError):
            CusumDetector(drift=-0.1)
        with pytest.raises(ConfigurationError):
            CusumDetector(burn_in=2)


class TestCusum:
    def test_detects_clear_upward_shift(self, rng):
        before = list(rng.normal(0.4, 0.05, size=100))
        after = list(rng.normal(0.7, 0.05, size=60))
        stream = make_stream(np.clip(before + after, 0, 1))
        report = CusumDetector(threshold=5.0).detect(stream)
        assert report.suspicious_verdicts
        flagged = report.flagged_rating_ids
        assert max(flagged) >= 100  # alarms cover the shifted regime

    def test_detects_downward_shift(self, rng):
        before = list(rng.normal(0.7, 0.05, size=100))
        after = list(rng.normal(0.4, 0.05, size=60))
        stream = make_stream(np.clip(before + after, 0, 1))
        report = CusumDetector(threshold=5.0).detect(stream)
        assert report.suspicious_verdicts

    def test_quiet_on_stationary_noise(self, rng):
        stream = make_stream(np.clip(rng.normal(0.5, 0.1, size=300), 0, 1))
        report = CusumDetector(threshold=6.0).detect(stream)
        assert len(report.suspicious_verdicts) <= 1

    def test_short_stream_yields_nothing(self):
        stream = make_stream([0.5] * 10)
        report = CusumDetector(burn_in=30).detect(stream)
        assert report.verdicts == []

    def test_constant_burn_in_does_not_crash(self, rng):
        values = [0.5] * 40 + list(np.clip(rng.normal(0.8, 0.05, 40), 0, 1))
        report = CusumDetector().detect(make_stream(values))
        assert report.suspicious_verdicts  # shift after constant start

    def test_statistic_resets_after_alarm(self, rng):
        # Two separated shifts produce at least two alarms.
        a = list(rng.normal(0.5, 0.04, size=80))
        b = list(rng.normal(0.8, 0.04, size=40))
        c = list(rng.normal(0.5, 0.04, size=40))
        d = list(rng.normal(0.2, 0.04, size=40))
        stream = make_stream(np.clip(a + b + c + d, 0, 1))
        report = CusumDetector(threshold=5.0).detect(stream)
        assert len(report.suspicious_verdicts) >= 2


class TestVarianceRatio:
    def test_flags_low_variance_window(self, rng):
        wide = list(np.clip(rng.normal(0.6, 0.25, size=150), 0, 1))
        tight = list(np.clip(rng.normal(0.65, 0.02, size=50), 0, 1))
        stream = make_stream(wide[:100] + tight + wide[100:])
        detector = VarianceRatioDetector(
            alpha=0.01, windower=CountWindower(size=50, step=25)
        )
        report = detector.detect(stream)
        assert report.suspicious_verdicts
        flagged = report.flagged_rating_ids
        assert flagged & set(range(100, 150))

    def test_quiet_on_homogeneous_noise(self, rng):
        stream = make_stream(np.clip(rng.normal(0.5, 0.2, size=300), 0, 1))
        report = VarianceRatioDetector(alpha=0.01).detect(stream)
        assert len(report.suspicious_verdicts) <= 1

    def test_needs_enough_windows(self, rng):
        stream = make_stream(np.clip(rng.normal(0.5, 0.2, size=60), 0, 1))
        detector = VarianceRatioDetector(windower=CountWindower(size=50, step=25))
        report = detector.detect(stream)
        assert report.verdicts == []

    def test_unanimous_stream_handled(self):
        stream = make_stream([0.5] * 200)
        report = VarianceRatioDetector().detect(stream)
        assert report.verdicts == []

    def test_empty_stream(self):
        assert VarianceRatioDetector().detect(RatingStream()).verdicts == []

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            VarianceRatioDetector(alpha=0.6)
