"""Equivalence tests for the covariance-method AR fast paths.

The contract of :mod:`repro.signal.sliding` (and the normal-equations
path inside :func:`repro.signal.ar.arcov`) is *numerical equivalence*
with the reference least-squares solve, not approximate agreement:
coefficients and normalized errors must match the reference to 1e-9 on
every buffer the detectors can produce -- random, constant,
near-constant, and rank-deficient alike.  The reference implementation
below rebuilds the covariance design matrix with explicit Python loops
(the seed implementation's shape) and solves with ``lstsq``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.ar_detector import ARModelErrorDetector
from repro.detectors.online import OnlineARDetector
from repro.errors import ConfigurationError, InsufficientDataError, SignalModelError
from repro.signal import (
    AR_METHODS,
    CountWindower,
    SlidingCovarianceFitter,
    TimeWindower,
    arcov,
    fit_windows,
)
from tests.conftest import make_stream

TOL = 1e-9


def reference_arcov(x, order):
    """Loop-built covariance design + lstsq (the seed implementation)."""
    x = np.asarray(x, dtype=float)
    n = x.size
    rows = []
    targets = []
    for i in range(order, n):
        rows.append(x[i - 1 :: -1][:order])
        targets.append(x[i])
    design = np.vstack(rows)
    target = np.asarray(targets)
    solution, *_ = np.linalg.lstsq(design, -target, rcond=None)
    residuals = target + design @ solution
    error_energy = float(np.dot(residuals, residuals))
    signal_energy = float(np.dot(target, target))
    normalized = 1.0 if signal_energy <= 0.0 else error_energy / signal_energy
    return np.concatenate(([1.0], solution)), float(np.clip(normalized, 0.0, 1.0))


def assert_matches_reference(model, x, order):
    coeffs, normalized = reference_arcov(x, order)
    np.testing.assert_allclose(model.coefficients, coeffs, atol=TOL, rtol=0)
    assert abs(model.normalized_error - normalized) < TOL


def signal_cases(rng):
    """Buffers spanning the conditioning spectrum the detectors see."""
    n = 120
    ar2 = [0.6, 0.55]
    for _ in range(n):
        ar2.append(0.5 + 0.55 * (ar2[-1] - 0.5) - 0.3 * (ar2[-2] - 0.5)
                   + rng.normal(0, 0.03))
    return {
        "random": rng.uniform(0.0, 1.0, size=n),
        "ar_process": np.clip(ar2, 0.0, 1.0),
        "constant": np.full(n, 0.7),
        "near_constant": 0.7 + 1e-9 * rng.standard_normal(n),
        "rank_deficient": np.tile([0.2, 0.8], n // 2),
        "campaign": np.concatenate(
            [rng.uniform(0.4, 1.0, size=n // 2), np.full(n - n // 2, 0.95)]
        ),
    }


class TestArcovFastPath:
    @pytest.mark.parametrize(
        "case", ["random", "ar_process", "constant", "near_constant",
                 "rank_deficient", "campaign"]
    )
    def test_matches_reference(self, rng, case):
        x = signal_cases(rng)[case]
        for order in (1, 2, 4):
            assert_matches_reference(arcov(x, order), x, order)

    def test_residuals_still_available(self, rng):
        x = rng.uniform(0, 1, size=60)
        model = arcov(x, 4)
        assert model.residuals is not None
        assert model.residuals.shape == (56,)


class TestSlidingCovarianceFitter:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlidingCovarianceFitter(order=0, capacity=10)
        with pytest.raises(ConfigurationError):
            SlidingCovarianceFitter(order=4, capacity=8)
        fitter = SlidingCovarianceFitter(order=2, capacity=10)
        with pytest.raises(SignalModelError):
            fitter.push(float("nan"))

    def test_insufficient_data(self):
        fitter = SlidingCovarianceFitter(order=4, capacity=20)
        fitter.extend([0.5] * 8)
        with pytest.raises(InsufficientDataError):
            fitter.fit()

    @pytest.mark.parametrize(
        "case", ["random", "ar_process", "constant", "near_constant",
                 "rank_deficient", "campaign"]
    )
    def test_streaming_matches_reference(self, rng, case):
        x = signal_cases(rng)[case]
        fitter = SlidingCovarianceFitter(order=4, capacity=50)
        for i, value in enumerate(x):
            fitter.push(value)
            if len(fitter) > 8 and i % 5 == 0:
                assert_matches_reference(fitter.fit(), fitter.values, 4)

    def test_long_stream_drift_stays_below_tolerance(self, rng):
        # 3000 pushes cross many rebuild boundaries and many full
        # window turnovers; drift must never reach the equivalence bar.
        x = np.clip(rng.normal(0.6, 0.2, size=3000), 0, 1)
        fitter = SlidingCovarianceFitter(order=4, capacity=50)
        worst = 0.0
        for i, value in enumerate(x):
            fitter.push(value)
            if fitter.full and i % 7 == 0:
                model = fitter.fit()
                coeffs, normalized = reference_arcov(fitter.values, 4)
                worst = max(
                    worst,
                    float(np.max(np.abs(model.coefficients - coeffs))),
                    abs(model.normalized_error - normalized),
                )
        assert worst < TOL

    def test_matches_arcov_exactly_shaped(self, rng):
        x = rng.uniform(0, 1, size=50)
        fitter = SlidingCovarianceFitter(order=4, capacity=50)
        fitter.extend(x)
        fast = fitter.fit()
        slow = arcov(x, 4)
        np.testing.assert_allclose(
            fast.coefficients, slow.coefficients, atol=TOL, rtol=0
        )
        assert abs(fast.normalized_error - slow.normalized_error) < TOL
        assert fast.n_samples == slow.n_samples == 50
        assert fast.method == "covariance"
        assert fast.residuals is None

    def test_reset_and_refill(self, rng):
        fitter = SlidingCovarianceFitter(order=2, capacity=20)
        fitter.extend(rng.uniform(0, 1, size=20))
        fitter.reset()
        assert len(fitter) == 0
        x = rng.uniform(0, 1, size=20)
        fitter.extend(x)
        assert_matches_reference(fitter.fit(), x, 2)


class TestFitWindows:
    def test_count_windows_match_per_window_arcov(self, rng):
        values = rng.uniform(0, 1, size=400)
        windower = CountWindower(size=50, step=10)
        fitted = fit_windows(values, 4, windower)
        assert len(fitted) > 30
        for window, model in fitted:
            x = window.values(values)
            assert_matches_reference(model, x, 4)
            assert model.residuals is not None

    def test_rank_deficient_window_included(self, rng):
        # A constant stretch makes some windows' Gram singular; those
        # must fall back to lstsq, not be dropped or go NaN.
        values = np.concatenate(
            [rng.uniform(0, 1, size=100), np.full(100, 0.8),
             rng.uniform(0, 1, size=100)]
        )
        fitted = fit_windows(values, 4, CountWindower(size=50, step=25))
        assert len(fitted) == len(
            [w for w in CountWindower(size=50, step=25).windows(
                np.arange(300.0)) if w.size >= 9]
        )
        for window, model in fitted:
            assert np.all(np.isfinite(model.coefficients))
            assert_matches_reference(model, window.values(values), 4)

    def test_time_windows_variable_sizes(self, rng):
        times = np.sort(rng.uniform(0, 100, size=300))
        values = rng.uniform(0, 1, size=300)
        windower = TimeWindower(length=15.0, step=5.0)
        fitted = fit_windows(values, 4, windower, times=times)
        assert len(fitted) > 5
        sizes = {w.size for w, _ in fitted}
        assert len(sizes) > 1  # genuinely heterogeneous groups
        for window, model in fitted:
            assert_matches_reference(model, window.values(values), 4)

    @pytest.mark.parametrize("method", ["autocorrelation", "burg"])
    def test_other_estimators_match_loop(self, rng, method):
        values = rng.uniform(0, 1, size=200)
        windower = CountWindower(size=40, step=20)
        fitted = fit_windows(values, 4, windower, method=method)
        assert fitted
        for window, model in fitted:
            expected = AR_METHODS[method](window.values(values), 4)
            np.testing.assert_array_equal(model.coefficients, expected.coefficients)
            assert model.normalized_error == expected.normalized_error

    def test_min_window_skips_small(self, rng):
        values = rng.uniform(0, 1, size=100)
        fitted = fit_windows(
            values, 4, CountWindower(size=50, step=30), min_window=50
        )
        assert all(w.size >= 50 for w, _ in fitted)

    def test_rejects_bad_inputs(self):
        with pytest.raises(SignalModelError):
            fit_windows([0.5] * 30, 0, CountWindower(size=10, step=5))
        with pytest.raises(ConfigurationError):
            fit_windows([0.5] * 30, 2, CountWindower(size=10, step=5),
                        method="nope")
        with pytest.raises(SignalModelError):
            fit_windows([0.5, np.nan] * 15, 2, CountWindower(size=10, step=5))

    def test_empty_signal(self):
        assert fit_windows([], 4, CountWindower(size=50, step=25)) == []


class TestDetectorEquivalence:
    def test_batch_detector_unchanged_by_fast_path(self, rng):
        # The batch detector's verdicts must equal fitting each window
        # with the reference solver and thresholding (the seed logic).
        values = np.clip(
            np.concatenate(
                [rng.normal(0.6, 0.2, size=150), np.full(80, 0.9),
                 rng.normal(0.6, 0.2, size=70)]
            ),
            0.0,
            1.0,
        )
        stream = make_stream(np.round(values, 2))
        detector = ARModelErrorDetector(threshold=0.05)
        verdicts = detector.window_errors(stream)
        assert verdicts
        for verdict in verdicts:
            x = verdict.window.values(stream.values)
            _, normalized = reference_arcov(x, detector.order)
            assert abs(verdict.statistic - normalized) < TOL
            assert verdict.suspicious == (verdict.statistic < detector.threshold)

    def test_online_incremental_matches_batch_refit(self, rng):
        # The headline equivalence: the incremental detector emits the
        # same verdict sequence as the seed per-refit detector.
        values = np.clip(
            np.concatenate(
                [rng.normal(0.6, 0.2, size=300), np.full(120, 0.85),
                 rng.normal(0.6, 0.2, size=180)]
            ),
            0.0,
            1.0,
        )
        ratings = list(make_stream(values))
        fast = OnlineARDetector(window_size=50, stride=5, threshold=0.1,
                                incremental=True)
        slow = OnlineARDetector(window_size=50, stride=5, threshold=0.1,
                                incremental=False)
        fast_verdicts = fast.observe_many(ratings)
        slow_verdicts = slow.observe_many(ratings)
        assert len(fast_verdicts) == len(slow_verdicts)
        for fv, sv in zip(fast_verdicts, slow_verdicts):
            assert abs(fv.statistic - sv.statistic) < TOL
            assert fv.suspicious == sv.suspicious
            assert fv.level == sv.level
            assert fv.window.index == sv.window.index

    def test_incremental_state_roundtrip(self, rng):
        values = np.clip(rng.normal(0.6, 0.2, size=200), 0, 1)
        ratings = list(make_stream(values))
        detector = OnlineARDetector(window_size=50, stride=5, incremental=True)
        detector.observe_many(ratings[:120])
        state = detector.state_dict()
        restored = OnlineARDetector(window_size=50, stride=5, incremental=True)
        restored.load_state(state)
        tail_a = detector.observe_many(ratings[120:])
        tail_b = restored.observe_many(ratings[120:])
        assert len(tail_a) == len(tail_b)
        for va, vb in zip(tail_a, tail_b):
            assert abs(va.statistic - vb.statistic) < TOL
            assert va.suspicious == vb.suspicious

    def test_incremental_requires_covariance(self):
        with pytest.raises(ConfigurationError):
            OnlineARDetector(method="burg", incremental=True)

    def test_reset_clears_fitter(self, rng):
        values = np.clip(rng.normal(0.6, 0.2, size=120), 0, 1)
        detector = OnlineARDetector(window_size=50, stride=5, incremental=True)
        detector.observe_many(list(make_stream(values)))
        detector.reset()
        assert len(detector._fitter) == 0
        replay = detector.observe_many(list(make_stream(values)))
        fresh = OnlineARDetector(window_size=50, stride=5, incremental=True)
        expected = fresh.observe_many(list(make_stream(values)))
        assert [v.statistic for v in replay] == pytest.approx(
            [v.statistic for v in expected], abs=TOL
        )
