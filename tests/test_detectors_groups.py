"""Tests for co-suspicion graphs and collusion-group recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.base import SuspicionReport, WindowVerdict
from repro.detectors.groups import (
    build_cosuspicion_graph,
    detect_collusion_groups,
    extract_groups,
)
from repro.errors import ConfigurationError
from repro.experiments import REGISTRY, collusion_groups
from repro.ratings.stream import RatingStream
from repro.simulation.marketplace import MarketplaceConfig
from repro.simulation.pipeline import PipelineConfig
from repro.signal.windows import Window
from tests.conftest import make_rating


def report_with_flags(rater_ids_per_window, suspicious_flags):
    """Build a synthetic report: one window per rater-id list."""
    ratings = []
    index = {}
    rid_counter = 0
    all_ids = []
    for window_raters in rater_ids_per_window:
        positions = []
        for rater in window_raters:
            ratings.append(
                make_rating(rid_counter, 0.5, float(rid_counter), rater_id=rater)
            )
            positions.append(rid_counter)
            rid_counter += 1
        all_ids.append(positions)
    stream = RatingStream(ratings=tuple(ratings))
    verdicts = [
        WindowVerdict(
            window=Window(
                index=i,
                indices=np.array(positions),
                start_time=float(i),
                end_time=float(i + 1),
            ),
            statistic=0.05,
            suspicious=flag,
            level=1.0 if flag else 0.0,
        )
        for i, (positions, flag) in enumerate(zip(all_ids, suspicious_flags))
    ]
    return SuspicionReport(stream=stream, verdicts=verdicts)


class TestGraphConstruction:
    def test_pairs_counted_once_per_report(self):
        # Two overlapping flagged windows with the same pair: weight 1.
        report = report_with_flags([[1, 2], [1, 2]], [True, True])
        graph, n_windows = build_cosuspicion_graph([report])
        assert n_windows == 2
        assert graph[1][2]["weight"] == 1

    def test_weight_accumulates_across_reports(self):
        reports = [
            report_with_flags([[1, 2, 3]], [True]) for _ in range(4)
        ]
        graph, _ = build_cosuspicion_graph(reports)
        assert graph[1][2]["weight"] == 4
        assert graph[2][3]["weight"] == 4

    def test_clean_windows_contribute_nothing(self):
        report = report_with_flags([[1, 2, 3]], [False])
        graph, n_windows = build_cosuspicion_graph([report])
        assert n_windows == 0
        assert graph.number_of_edges() == 0

    def test_oversize_reports_skipped(self):
        report = report_with_flags([list(range(50))], [True])
        graph, _ = build_cosuspicion_graph([report], max_members_per_report=10)
        assert graph.number_of_edges() == 0


class TestGroupExtraction:
    def test_weak_edges_pruned(self):
        reports = [report_with_flags([[1, 2, 3]], [True])]
        reports += [report_with_flags([[4, 5, 6]], [True]) for _ in range(3)]
        graph, _ = build_cosuspicion_graph(reports)
        groups = extract_groups(graph, min_edge_weight=2, min_group_size=3)
        assert groups == (frozenset({4, 5, 6}),)

    def test_small_components_discarded(self):
        reports = [report_with_flags([[1, 2]], [True]) for _ in range(5)]
        graph, _ = build_cosuspicion_graph(reports)
        assert extract_groups(graph, min_edge_weight=2, min_group_size=3) == ()

    def test_groups_sorted_largest_first(self):
        # Each ring co-occurs in its own reports (a report's flagged
        # members pool together, so mixed windows in one report would
        # merge the rings by design).
        reports = [report_with_flags([[1, 2, 3]], [True]) for _ in range(3)]
        reports += [report_with_flags([[7, 8, 9, 10]], [True]) for _ in range(3)]
        graph, _ = build_cosuspicion_graph(reports)
        groups = extract_groups(graph, min_edge_weight=2)
        assert [len(g) for g in groups] == [4, 3]

    def test_invalid_parameters(self):
        import networkx as nx

        with pytest.raises(ConfigurationError):
            extract_groups(nx.Graph(), min_edge_weight=0)
        with pytest.raises(ConfigurationError):
            extract_groups(nx.Graph(), min_group_size=1)

    def test_end_to_end_helper(self):
        reports = [report_with_flags([[1, 2, 3]], [True]) for _ in range(3)]
        result = detect_collusion_groups(reports, min_edge_weight=2)
        assert result.groups == (frozenset({1, 2, 3}),)
        assert result.flagged_raters == frozenset({1, 2, 3})
        assert result.n_windows == 3


class TestMarketplaceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        config = MarketplaceConfig(
            n_reliable=120, n_careless=60, n_pc=60, n_months=8, p_rate=0.04
        )
        # The compact world has fewer campaigns but a higher honest
        # co-attendance rate (p_rate 0.04), so the edge threshold stays
        # at 6 and the achievable precision/recall trade-off is looser
        # than the full marketplace's 0.94/0.86.
        return collusion_groups.run(
            seed=5, config=config, min_edge_weight=6
        )

    def test_registered(self):
        assert "collusion-groups" in REGISTRY

    def test_recovers_recruits_with_high_precision(self, result):
        assert result.membership_precision > 0.6
        assert result.membership_recall > 0.4

    def test_largest_group_dominated_by_recruits(self, result):
        assert result.largest_group_purity > 0.6

    def test_report_renders(self, result):
        report = collusion_groups.format_report(result)
        assert "precision" in report
        assert "purity" in report
