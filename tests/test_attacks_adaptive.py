"""Tests for the adaptive (detector-aware) collusion strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.adaptive import (
    CamouflageCampaign,
    DutyCycleCampaign,
    RampCampaign,
)
from repro.attacks.campaign import CollusionCampaign
from repro.errors import ConfigurationError
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative


@pytest.fixture
def honest_trace(rng):
    config = IllustrativeConfig().without_attack()
    return generate_illustrative(config, rng), config


def apply_campaign(campaign, honest_trace, rng):
    trace, config = honest_trace
    return campaign.apply(
        trace.honest,
        quality_at=config.quality,
        base_rate=config.arrival_rate,
        scale=config.scale,
        rng=rng,
    )


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "campaign",
        [
            CamouflageCampaign(start=30.0, end=44.0, camouflage_variance=0.2),
            RampCampaign(start=30.0, end=44.0),
            DutyCycleCampaign(start=30.0, end=44.0),
        ],
        ids=["camouflage", "ramp", "duty_cycle"],
    )
    def test_recruited_ratings_labeled_and_in_window(
        self, campaign, honest_trace, rng
    ):
        attacked = apply_campaign(campaign, honest_trace, rng)
        unfair = attacked.unfair_only()
        assert len(unfair) > 0
        assert np.all(unfair.times >= 30.0)
        assert np.all(unfair.times < 44.0)

    def test_honest_stream_untouched(self, honest_trace, rng):
        trace, _ = honest_trace
        campaign = RampCampaign(start=30.0, end=44.0)
        attacked = apply_campaign(campaign, honest_trace, rng)
        original_ids = {r.rating_id for r in trace.honest}
        survivors = [r for r in attacked if r.rating_id in original_ids]
        assert len(survivors) == len(trace.honest)
        assert not any(r.unfair for r in survivors)

    def test_fresh_rater_ids(self, honest_trace, rng):
        trace, _ = honest_trace
        campaign = CamouflageCampaign(start=30.0, end=44.0)
        attacked = apply_campaign(campaign, honest_trace, rng)
        max_honest = int(trace.honest.rater_ids.max())
        assert all(r.rater_id > max_honest for r in attacked.unfair_only())

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            RampCampaign(start=10.0, end=10.0)

    def test_from_baseline_copies_parameters(self):
        baseline = CollusionCampaign(
            start=5.0, end=15.0, type2_bias=0.25, type2_power=0.5
        )
        adapted = CamouflageCampaign.from_baseline(
            baseline, camouflage_variance=0.1
        )
        assert adapted.start == 5.0
        assert adapted.bias == 0.25
        assert adapted.power == 0.5
        assert adapted.camouflage_variance == 0.1


class TestCamouflage:
    def test_variance_matches_honest(self, honest_trace, rng):
        campaign = CamouflageCampaign(
            start=30.0, end=44.0, bias=0.0, camouflage_variance=0.2, power=3.0
        )
        attacked = apply_campaign(campaign, honest_trace, rng)
        unfair = attacked.unfair_only().values
        # Quantized + clipped Gaussian with var 0.2 around ~0.75 has a
        # wide spread; the tight fingerprint (std ~0.14) must be gone.
        assert np.std(unfair) > 0.25


class TestRamp:
    def test_bias_grows_across_interval(self, honest_trace, rng):
        campaign = RampCampaign(
            start=30.0, end=44.0, bias=0.3, bad_variance=0.001, power=5.0
        )
        trace, config = honest_trace
        attacked = apply_campaign(campaign, honest_trace, rng)
        unfair = attacked.unfair_only()
        early = [r.value - config.quality(r.time) for r in unfair if r.time < 33.0]
        late = [r.value - config.quality(r.time) for r in unfair if r.time > 41.0]
        assert np.mean(late) > np.mean(early) + 0.1


class TestDutyCycle:
    def test_quiet_gaps_have_no_recruits(self, honest_trace, rng):
        campaign = DutyCycleCampaign(
            start=30.0, end=44.0, on_days=2.0, off_days=2.0, power=5.0
        )
        attacked = apply_campaign(campaign, honest_trace, rng)
        for rating in attacked.unfair_only():
            phase = (rating.time - 30.0) % 4.0
            assert phase < 2.0

    def test_invalid_duty_cycle_rejected(self):
        with pytest.raises(ConfigurationError):
            DutyCycleCampaign(start=0.0, end=10.0, on_days=0.0)
