"""Tests for trust records, beta trust, and record maintenance."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.trust.records import RecordMaintenance, TrustRecord, beta_trust


class TestBetaTrust:
    def test_neutral_prior(self):
        assert beta_trust(0, 0) == 0.5

    def test_all_successes(self):
        assert beta_trust(8, 0) == pytest.approx(0.9)

    def test_all_failures(self):
        assert beta_trust(0, 8) == pytest.approx(0.1)

    def test_monotone_in_successes(self):
        assert beta_trust(5, 2) < beta_trust(6, 2)

    def test_monotone_in_failures(self):
        assert beta_trust(5, 2) > beta_trust(5, 3)

    def test_fractional_evidence_allowed(self):
        assert 0.0 < beta_trust(0.5, 1.7) < 0.5

    def test_negative_evidence_rejected(self):
        with pytest.raises(ConfigurationError):
            beta_trust(-1, 0)

    def test_bounded(self):
        assert 0.0 < beta_trust(1e9, 0) < 1.0
        assert 0.0 < beta_trust(0, 1e9) < 1.0


class TestTrustRecord:
    def test_initial_trust_is_neutral(self):
        assert TrustRecord(rater_id=0).trust == 0.5

    def test_add_evidence(self):
        record = TrustRecord(rater_id=0)
        record.add_evidence(successes=3, failures=1)
        assert record.trust == pytest.approx(4.0 / 6.0)

    def test_evidence_clipped_at_zero(self):
        record = TrustRecord(rater_id=0, successes=1.0)
        record.add_evidence(successes=-5.0, failures=0.0)
        assert record.successes == 0.0

    def test_forgetting_discounts(self):
        record = TrustRecord(rater_id=0, successes=10.0, failures=2.0)
        record.forget(0.5)
        assert record.successes == 5.0
        assert record.failures == 1.0

    def test_forgetting_moves_trust_toward_neutral(self):
        record = TrustRecord(rater_id=0, successes=100.0)
        before = record.trust
        record.forget(0.1)
        assert 0.5 < record.trust < before

    def test_invalid_forgetting_factor(self):
        with pytest.raises(ConfigurationError):
            TrustRecord(rater_id=0).forget(1.5)

    def test_checkpoint_appends_history(self):
        record = TrustRecord(rater_id=0)
        record.checkpoint()
        record.add_evidence(successes=2, failures=0)
        record.checkpoint()
        assert record.history == [0.5, pytest.approx(0.75)]


class TestRecordMaintenance:
    def test_new_record_neutral_by_default(self):
        record = RecordMaintenance().new_record(3)
        assert record.trust == 0.5
        assert record.rater_id == 3

    def test_initial_evidence(self):
        maintenance = RecordMaintenance(initial_successes=2.0)
        assert maintenance.new_record(0).trust == pytest.approx(0.75)

    def test_forgetting_applied_to_all(self):
        maintenance = RecordMaintenance(forgetting_factor=0.5)
        records = {
            0: TrustRecord(rater_id=0, successes=4.0),
            1: TrustRecord(rater_id=1, failures=4.0),
        }
        maintenance.apply_forgetting(records)
        assert records[0].successes == 2.0
        assert records[1].failures == 2.0

    def test_no_forgetting_is_noop(self):
        maintenance = RecordMaintenance(forgetting_factor=1.0)
        records = {0: TrustRecord(rater_id=0, successes=4.0)}
        maintenance.apply_forgetting(records)
        assert records[0].successes == 4.0

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            RecordMaintenance(forgetting_factor=1.2)
        with pytest.raises(ConfigurationError):
            RecordMaintenance(initial_successes=-1.0)
