"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.aggregation.methods import (
    BetaFunctionAggregator,
    ModifiedWeightedAverage,
    PlainWeightedAverage,
    SimpleAverage,
    SunTrustModelAggregator,
)
from repro.filters.beta_quantile import BetaQuantileFilter, moment_matched_beta
from repro.ratings.scales import RatingScale
from repro.ratings.stream import RatingStream
from repro.signal.ar import arcov
from repro.signal.windows import CountWindower, TimeWindower
from repro.trust.entropy_trust import entropy_trust, entropy_trust_inverse
from repro.trust.records import TrustRecord, beta_trust
from tests.conftest import make_rating


unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
unit_arrays = arrays(
    dtype=float,
    shape=st.integers(min_value=1, max_value=30),
    elements=unit,
)


def parallel_values_trusts(draw):
    values = draw(unit_arrays)
    trusts = draw(
        arrays(dtype=float, shape=values.shape, elements=unit)
    )
    return values, trusts


pairs = st.builds(lambda: None).flatmap(lambda _: st.nothing())  # placeholder


@st.composite
def values_and_trusts(draw):
    values = draw(unit_arrays)
    trusts = draw(arrays(dtype=float, shape=values.shape, elements=unit))
    return values, trusts


AGGREGATORS = [
    SimpleAverage(),
    BetaFunctionAggregator(),
    ModifiedWeightedAverage(),
    PlainWeightedAverage(),
    SunTrustModelAggregator(),
]


class TestAggregatorProperties:
    @given(values_and_trusts())
    def test_aggregate_stays_in_unit_interval(self, pair):
        values, trusts = pair
        for aggregator in AGGREGATORS:
            result = aggregator.aggregate(values, trusts)
            assert 0.0 <= result <= 1.0, aggregator.name

    @given(unit, st.integers(min_value=1, max_value=20))
    def test_unanimous_ratings_full_trust(self, value, n):
        # With full trust and unanimous ratings, trust-aware methods
        # return (nearly) that value.
        values = [value] * n
        trusts = [1.0] * n
        assert SimpleAverage().aggregate(values, trusts) == pytest.approx(value)
        assert ModifiedWeightedAverage().aggregate(values, trusts) == pytest.approx(
            value
        )
        assert SunTrustModelAggregator().aggregate(values, trusts) == pytest.approx(
            value
        )

    @given(values_and_trusts())
    def test_simple_average_permutation_invariant(self, pair):
        values, trusts = pair
        order = np.argsort(values)
        a = SimpleAverage().aggregate(values, trusts)
        b = SimpleAverage().aggregate(values[order], trusts[order])
        assert a == pytest.approx(b)

    @given(values_and_trusts())
    def test_mwa_bounded_by_value_range(self, pair):
        values, trusts = pair
        result = ModifiedWeightedAverage().aggregate(values, trusts)
        assert values.min() - 1e-9 <= result <= values.max() + 1e-9


class TestBetaTrustProperties:
    @given(
        st.floats(min_value=0.0, max_value=1e6),
        st.floats(min_value=0.0, max_value=1e6),
    )
    def test_trust_in_open_unit_interval(self, s, f):
        assert 0.0 < beta_trust(s, f) < 1.0

    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_forgetting_moves_toward_neutral(self, s, f, factor):
        record = TrustRecord(rater_id=0, successes=s, failures=f)
        before = record.trust
        record.forget(factor)
        after = record.trust
        if before >= 0.5:
            assert 0.5 - 1e-12 <= after <= before + 1e-12
        else:
            assert before - 1e-12 <= after <= 0.5 + 1e-12


class TestEntropyTrustProperties:
    @given(unit)
    def test_range(self, p):
        assert -1.0 <= entropy_trust(p) <= 1.0

    @given(unit)
    def test_sign_matches_side(self, p):
        t = entropy_trust(p)
        if p > 0.5:
            assert t > 0.0
        elif p < 0.5:
            assert t < 0.0
        else:
            assert t == 0.0

    @given(st.floats(min_value=0.001, max_value=0.999))
    def test_inverse_round_trip(self, p):
        assert entropy_trust_inverse(entropy_trust(p)) == pytest.approx(p, abs=1e-5)


class TestScaleProperties:
    @given(
        st.integers(min_value=2, max_value=20),
        st.floats(min_value=-2.0, max_value=3.0, allow_nan=False),
    )
    def test_quantize_is_idempotent_and_legal(self, levels, raw):
        scale = RatingScale(levels=levels)
        q = scale.quantize(raw)
        assert scale.quantize(q) == pytest.approx(q)
        assert 0.0 <= q <= 1.0
        # q is one of the scale's levels.
        assert np.min(np.abs(scale.values - q)) < 1e-9

    @given(arrays(dtype=float, shape=st.integers(1, 50), elements=st.floats(-1, 2)))
    def test_quantize_array_matches_scalar(self, raw):
        scale = RatingScale(levels=11)
        np.testing.assert_allclose(
            scale.quantize_array(raw),
            [scale.quantize(float(v)) for v in raw],
        )


class TestWindowProperties:
    @given(
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=0, max_value=100),
    )
    def test_count_windows_cover_without_gaps(self, size, step, n):
        times = np.arange(float(n))
        windows = list(CountWindower(size=size, step=step).windows(times))
        for window in windows:
            assert window.size == size
            assert np.all(np.diff(window.indices) == 1)
        if step <= size and n >= size:
            covered = set()
            for window in windows:
                covered |= set(window.indices.tolist())
            # Contiguous prefix coverage: all indices up to the last
            # window's end are covered.
            last_end = windows[-1].indices[-1]
            assert covered == set(range(int(last_end) + 1))

    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=50))
    def test_time_windows_contain_only_their_span(self, raw_times):
        times = np.sort(np.asarray(raw_times))
        for window in TimeWindower(length=10.0, origin=0.0).windows(times):
            inside = times[window.indices]
            assert np.all(inside >= window.start_time - 1e-9)
            assert np.all(inside < window.end_time + 1e-9)


class TestFilterProperties:
    @given(
        arrays(dtype=float, shape=st.integers(5, 60), elements=unit),
        st.floats(min_value=0.01, max_value=0.3),
    )
    @settings(max_examples=50, deadline=None)
    def test_filter_partition_and_mass_bound(self, values, sensitivity):
        stream = RatingStream.from_ratings(
            [make_rating(i, float(v), float(i)) for i, v in enumerate(values)]
        )
        result = BetaQuantileFilter(sensitivity=sensitivity).filter(stream)
        assert len(result.kept) + len(result.removed) == len(stream)
        # The quantile band keeps at least 1 - 2q of the mass.
        assert len(result.removed) <= int(np.ceil(2 * sensitivity * len(stream))) + 1

    @given(arrays(dtype=float, shape=st.integers(1, 100), elements=unit))
    @settings(max_examples=50, deadline=None)
    def test_moment_matched_beta_mean(self, values):
        alpha, beta = moment_matched_beta(values)
        assert alpha > 0 and beta > 0
        mean = float(np.mean(values))
        if 0.02 < mean < 0.98 and np.var(values) > 1e-4:
            assert alpha / (alpha + beta) == pytest.approx(mean, abs=0.05)


class TestArProperties:
    @given(
        arrays(
            dtype=float,
            shape=st.integers(min_value=20, max_value=80),
            elements=st.floats(min_value=0.0, max_value=1.0),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_normalized_error_bounded(self, values):
        model = arcov(values, order=4)
        assert 0.0 <= model.normalized_error <= 1.0

    @given(
        arrays(
            dtype=float,
            shape=st.integers(min_value=20, max_value=60),
            elements=st.floats(min_value=0.1, max_value=1.0),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_error_never_exceeds_signal_energy(self, values):
        model = arcov(values, order=3)
        assert model.error_energy <= model.signal_energy + 1e-6
