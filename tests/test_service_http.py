"""Tests for the stdlib HTTP API of the rating service."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ReproError
from repro.service import RatingEngine, ServiceConfig
from repro.service.http import start_background


@pytest.fixture()
def service():
    engine = RatingEngine(
        ServiceConfig(n_shards=2, detector_window=12, detector_order=2)
    )
    server, _thread = start_background(engine)
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield engine, base
    server.shutdown()
    server.server_close()


def _get(url):
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _get_text(url):
    with urllib.request.urlopen(url) as response:
        return response.status, response.headers.get("Content-Type"), response.read().decode()


def _post(url, payload, raw=None):
    data = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}, method="POST"
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRatingsEndpoint:
    def test_submit_and_score(self, service):
        engine, base = service
        status, body = _post(
            f"{base}/ratings",
            {"rater_id": 1, "product_id": 7, "value": 0.8, "time": 1.0},
        )
        assert status == 201
        assert body["accepted"] is True and body["seq"] == 0
        _post(f"{base}/ratings", {"rater_id": 2, "product_id": 7, "value": 0.7, "time": 2.0})
        status, body = _get(f"{base}/products/7/score")
        assert status == 200
        assert body["score"] == pytest.approx(0.75)
        assert engine.n_accepted == 2

    def test_out_of_order_conflict(self, service):
        _engine, base = service
        _post(f"{base}/ratings", {"rater_id": 1, "product_id": 3, "value": 0.5, "time": 5.0})
        status, body = _post(
            f"{base}/ratings", {"rater_id": 1, "product_id": 3, "value": 0.5, "time": 1.0}
        )
        assert status == 409
        assert "out-of-order" in body["error"]

    def test_server_assigns_time_and_id(self, service):
        _engine, base = service
        status, body = _post(f"{base}/ratings", {"rater_id": 5, "product_id": 9, "value": 0.4})
        assert status == 201
        assert isinstance(body["rating_id"], int)

    def test_invalid_value_rejected(self, service):
        _engine, base = service
        status, body = _post(
            f"{base}/ratings", {"rater_id": 1, "product_id": 1, "value": 1.7}
        )
        assert status == 400
        assert "lie in [0, 1]" in body["error"]

    def test_malformed_json_rejected(self, service):
        _engine, base = service
        status, body = _post(f"{base}/ratings", None, raw=b"{nope")
        assert status == 400
        assert "invalid JSON" in body["error"]

    def test_missing_fields_rejected(self, service):
        _engine, base = service
        status, _body = _post(f"{base}/ratings", {"value": 0.5})
        assert status == 400

    def test_engine_rejection_maps_to_400(self, service, monkeypatch):
        """A ReproError raised inside engine.submit must come back as a
        400 JSON body, not kill the handler thread mid-request."""
        engine, base = service

        def _refuse(rating):
            raise ReproError("engine refused this rating")

        monkeypatch.setattr(engine, "submit", _refuse)
        status, body = _post(
            f"{base}/ratings",
            {"rater_id": 1, "product_id": 1, "value": 0.5, "time": 1.0},
        )
        assert status == 400
        assert body["accepted"] is False
        assert "engine refused" in body["error"]
        # The server survives and keeps answering.
        monkeypatch.undo()
        status, _ = _post(
            f"{base}/ratings",
            {"rater_id": 1, "product_id": 1, "value": 0.5, "time": 2.0},
        )
        assert status == 201


class TestReadEndpoints:
    def test_unknown_product_404(self, service):
        _engine, base = service
        status, body = _get(f"{base}/products/404404/score")
        assert status == 404

    def test_trust_defaults_to_prior(self, service):
        _engine, base = service
        status, body = _get(f"{base}/raters/12345/trust")
        assert status == 200
        assert body["trust"] == 0.5

    def test_healthz(self, service):
        _engine, base = service
        status, body = _get(f"{base}/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0

    def test_stats(self, service):
        _engine, base = service
        status, body = _get(f"{base}/stats")
        assert status == 200
        assert body["n_shards"] == 2

    def test_unknown_route_404(self, service):
        _engine, base = service
        assert _get(f"{base}/nope")[0] == 404
        assert _post(f"{base}/nope", {})[0] == 404


class TestMetricsEndpoint:
    def test_prometheus_parseable_text(self, service):
        _engine, base = service
        _post(f"{base}/ratings", {"rater_id": 1, "product_id": 1, "value": 0.5, "time": 0.0})
        status, content_type, text = _get_text(f"{base}/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        # Minimal exposition-format parse: every non-comment line is
        # "name{labels} value" with a float-parseable value, and every
        # family carries a TYPE line.
        families = set()
        samples = 0
        for line in text.strip().splitlines():
            if line.startswith("# TYPE "):
                _, _, name, metric_type = line.split(" ", 3)
                assert metric_type in ("counter", "gauge", "histogram")
                families.add(name)
            elif not line.startswith("#"):
                name_part, value_part = line.rsplit(" ", 1)
                float(value_part)  # must parse
                base_name = name_part.split("{", 1)[0]
                for suffix in ("_bucket", "_sum", "_count"):
                    if base_name.endswith(suffix):
                        base_name = base_name[: -len(suffix)]
                        break
                assert base_name in families
                samples += 1
        assert "repro_ratings_accepted_total" in families
        assert "repro_ingest_latency_seconds" in families
        assert samples > 10
