"""Tests for the whole-program analysis engine (repro.devtools.analysis).

Covers the interval domain and contract registry, the four new rule
families (DI domain invariants, AR architecture, EX exception flow,
DX dead exports), the incremental content-hash cache, the new CLI
modes (``--strict``, ``--changed``), and the runtime domain-boundary
fixes the DI rules surfaced in ``repro.aggregation`` and
``repro.trust``.
"""

from __future__ import annotations

import ast
import json
import shutil
import subprocess
from pathlib import Path

import numpy as np
import pytest

from repro.devtools.analysis.contracts import (
    NAME_DOMAINS,
    default_registry,
    parse_interval,
)
from repro.devtools.analysis.intervals import (
    Evaluator,
    Interval,
    NON_NEGATIVE,
    OPEN_UNIT,
    SYMMETRIC_UNIT,
    UNIT,
    fraction_interval,
    point,
)
from repro.devtools.analysis.rules_arch import LAYERS, subpackage_layer
from repro.devtools.cli import main as lint_main
from repro.devtools.runner import run_lint
from repro.errors import ConfigurationError, EmptyWindowError

PROJECT_ROOT = Path(__file__).resolve().parents[1]


def write(root: Path, relpath: str, text: str) -> Path:
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def lint(root: Path, select=None, **kwargs):
    return run_lint([root], project_root=root, select=select, **kwargs)


def rules_of(result):
    return sorted({f.rule for f in result.active_findings()})


# ---------------------------------------------------------------------------
# Interval domain
# ---------------------------------------------------------------------------


class TestIntervals:
    def test_parse_interval_notation(self):
        assert parse_interval("(0, 1)") == OPEN_UNIT
        assert parse_interval("[0, 1]") == UNIT
        assert parse_interval("[-1, 1]") == SYMMETRIC_UNIT
        assert parse_interval("[0, inf)") == NON_NEGATIVE

    @pytest.mark.parametrize("bad", ["", "0, 1", "(0;1)", "{0, 1}", "(1)"])
    def test_parse_interval_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_interval(bad)

    def test_open_endpoints_are_strict(self):
        assert UNIT.contains_value(0.0)
        assert not OPEN_UNIT.contains_value(0.0)
        assert not OPEN_UNIT.contains_value(1.0)
        assert OPEN_UNIT.contains_value(0.5)
        assert OPEN_UNIT.within(UNIT)
        assert not UNIT.within(OPEN_UNIT)

    def test_meet_and_hull(self):
        assert UNIT.meet(Interval(2.0, 3.0)) is None
        met = UNIT.meet(Interval(0.5, 2.0))
        assert met == Interval(0.5, 1.0)
        hull = point(0.0).hull(point(2.0))
        assert hull == Interval(0.0, 2.0)

    def test_fraction_lemma_proves_beta_trust_open_unit(self):
        # (s + 1) / (s + f + 2) with s, f >= 0 lies strictly in (0, 1).
        node = ast.parse("(s + 1.0) / (s + f + 2.0)", mode="eval").body
        got = fraction_interval(
            node.left, node.right, lambda _term: NON_NEGATIVE
        )
        assert got is not None
        assert got.within(OPEN_UNIT)

    def test_fraction_lemma_refuses_unmatched_terms(self):
        # Numerator term `g` has no denominator partner: no conclusion.
        node = ast.parse("(g + 1.0) / (s + 2.0)", mode="eval").body
        assert (
            fraction_interval(node.left, node.right, lambda _t: NON_NEGATIVE)
            is None
        )

    def test_evaluator_convex_combination_refinement(self):
        # Naive interval arithmetic gives a*x + (1-a)*y in [0, 2] for
        # unit inputs; the convex-combination refinement keeps [0, 1].
        ev = Evaluator({"a": UNIT, "x": UNIT, "y": UNIT})
        node = ast.parse("a * x + (1.0 - a) * y", mode="eval").body
        got = ev.eval(node)
        assert got is not None
        assert got.within(UNIT)

    def test_evaluator_clip_and_abs(self):
        ev = Evaluator({"x": Interval(-5.0, 5.0)})
        clip = ast.parse("np.clip(x, 0.0, 1.0)", mode="eval").body
        assert ev.eval(clip).within(UNIT)
        absx = ast.parse("abs(x)", mode="eval").body
        assert ev.eval(absx).within(Interval(0.0, 5.0))


class TestContracts:
    def test_seed_registry_covers_paper_invariants(self):
        registry = default_registry()
        beta = registry.functions["repro.trust.records.beta_trust"]
        assert beta.returns == OPEN_UNIT
        assert beta.param_map["successes"] == NON_NEGATIVE
        ent = registry.functions["repro.trust.entropy_trust.entropy_trust"]
        assert ent.returns == SYMMETRIC_UNIT
        assert NAME_DOMAINS["trust"] == UNIT

    def test_digest_is_stable_and_sensitive(self):
        a, b = default_registry(), default_registry()
        assert a.digest() == b.digest()
        b.attributes["Fixture.attr"] = UNIT
        assert a.digest() != b.digest()

    def test_extend_from_module_parses_declarations(self):
        registry = default_registry()
        tree = ast.parse(
            '__lint_contracts__ = {\n'
            '    "poison": {"params": {"amount": "[0, 1]"},'
            ' "returns": "(0, 1)", "validates": ["amount"]},\n'
            '}\n'
        )
        registry.extend_from_module("pkg.mod", tree)
        contract = registry.functions["pkg.mod.poison"]
        assert contract.param_map["amount"] == UNIT
        assert contract.returns == OPEN_UNIT
        assert contract.validates == ("amount",)


# ---------------------------------------------------------------------------
# DI: domain invariants
# ---------------------------------------------------------------------------


class TestDomainRules:
    def test_di01_flags_out_of_domain_argument(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n'
            "__lint_contracts__ = {\n"
            '    "poison": {"params": {"amount": "[0, 1]"}},\n'
            "}\n\n\n"
            "def poison(amount):\n"
            '    """Contracted sink."""\n'
            "    return amount\n\n\n"
            "def bad():\n"
            '    """Passes an impossible amount."""\n'
            "    return poison(2.0)\n\n\n"
            "USES = (poison, bad)\n",
        )
        result = lint(tmp_path, select={"DI01"})
        findings = result.active_findings()
        assert len(findings) == 1
        assert "amount" in findings[0].message
        assert "poison" in findings[0].message
        assert "outside its contracted domain [0, 1]" in findings[0].message

    def test_di01_accepts_in_domain_argument(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n'
            "__lint_contracts__ = {\n"
            '    "poison": {"params": {"amount": "[0, 1]"}},\n'
            "}\n\n\n"
            "def poison(amount):\n"
            '    """Contracted sink."""\n'
            "    return amount\n\n\n"
            "def good():\n"
            '    """Passes a legal amount."""\n'
            "    return poison(0.5)\n\n\n"
            "USES = (poison, good)\n",
        )
        assert lint(tmp_path, select={"DI01"}).active_findings() == []

    def test_di02_flags_out_of_domain_return(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n'
            "__lint_contracts__ = {\n"
            '    "grow": {"returns": "[0, 1]"},\n'
            "}\n\n\n"
            "def grow():\n"
            '    """Returns out of its contracted domain."""\n'
            "    return 1.5\n\n\n"
            "USES = (grow,)\n",
        )
        findings = lint(tmp_path, select={"DI02"}).active_findings()
        assert len(findings) == 1
        assert "outside" in findings[0].message

    def test_di02_flags_out_of_domain_trust_write(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n\n'
            "def promote():\n"
            '    """Writes an impossible trust value."""\n'
            "    trust = 1.5\n"
            "    return trust\n\n\n"
            "USES = (promote,)\n",
        )
        findings = lint(tmp_path, select={"DI02"}).active_findings()
        assert len(findings) == 1
        assert "'trust'" in findings[0].message
        assert findings[0].line == 6

    def test_di02_guard_refinement_accepts_clamped_write(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n\n'
            "def promote(raw):\n"
            '    """Clamps before writing."""\n'
            "    if raw < 0.0 or raw > 1.0:\n"
            '        raise ValueError("raw out of range")\n'
            "    trust = raw\n"
            "    return trust\n\n\n"
            "USES = (promote,)\n",
        )
        assert lint(tmp_path, select={"DI02"}).active_findings() == []

    def test_di03_flags_unguarded_contracted_param(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n'
            "__lint_contracts__ = {\n"
            '    "use": {"params": {"level": "[0, 1]"}},\n'
            "}\n\n\n"
            "def use(level):\n"
            '    """Uses level without any guard."""\n'
            "    return level * 2.0\n\n\n"
            "USES = (use,)\n",
        )
        findings = lint(tmp_path, select={"DI03"}).active_findings()
        assert len(findings) == 1
        assert "'level'" in findings[0].message

    def test_di03_accepts_boundary_guard(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n'
            "__lint_contracts__ = {\n"
            '    "use": {"params": {"level": "[0, 1]"}},\n'
            "}\n\n\n"
            "def use(level):\n"
            '    """Raises on a boundary violation first."""\n'
            "    if level < 0.0 or level > 1.0:\n"
            '        raise ValueError("level out of range")\n'
            "    return level * 2.0\n\n\n"
            "USES = (use,)\n",
        )
        assert lint(tmp_path, select={"DI03"}).active_findings() == []

    def test_di03_accepts_guard_through_local_alias(self, tmp_path):
        # Mirrors multipath(): the guard runs on the converted array,
        # which is a single-source alias of the parameter.
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n'
            "__lint_contracts__ = {\n"
            '    "scale": {"params": {"xs": "[-1, 1]"}},\n'
            "}\n\n\n"
            "def scale(xs):\n"
            '    """Guards via an alias and a negative literal bound."""\n'
            "    arr = list(xs)\n"
            "    if min(arr) < -1.0 or max(arr) > 1.0:\n"
            '        raise ValueError("xs out of range")\n'
            "    return arr\n\n\n"
            "USES = (scale,)\n",
        )
        assert lint(tmp_path, select={"DI03"}).active_findings() == []

    def test_di03_accepts_clamp_reassignment(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n'
            "__lint_contracts__ = {\n"
            '    "use": {"params": {"level": "[0, 1]"}},\n'
            "}\n\n\n"
            "def use(level):\n"
            '    """Clamps instead of raising."""\n'
            "    level = min(max(level, 0.0), 1.0)\n"
            "    return level * 2.0\n\n\n"
            "USES = (use,)\n",
        )
        assert lint(tmp_path, select={"DI03"}).active_findings() == []

    def test_di03_accepts_delegation_to_validator(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n'
            "__lint_contracts__ = {\n"
            '    "check": {"params": {"x": "[0, 1]"}, "validates": ["x"]},\n'
            '    "use": {"params": {"x": "[0, 1]"}},\n'
            "}\n\n\n"
            "def check(x):\n"
            '    """Validator."""\n'
            "    if x < 0.0 or x > 1.0:\n"
            '        raise ValueError("x out of range")\n'
            "    return x\n\n\n"
            "def use(x):\n"
            '    """Delegates the check."""\n'
            "    x = check(x)\n"
            "    return x * 0.5\n\n\n"
            "USES = (check, use)\n",
        )
        assert lint(tmp_path, select={"DI03"}).active_findings() == []


# ---------------------------------------------------------------------------
# AR: architecture
# ---------------------------------------------------------------------------


class TestArchRules:
    def test_layer_map_and_lookup(self):
        assert subpackage_layer("repro.trust.records") == (2, "domain")
        assert subpackage_layer("repro.service.http") == (4, "application")
        assert subpackage_layer("repro") == (5, "interface")
        assert subpackage_layer("numpy") is None
        names = {name for _, name in LAYERS.values()}
        assert names == {
            "foundation",
            "primitives",
            "domain",
            "composition",
            "application",
            "interface",
        }

    def test_ar01_flags_upward_import(self, tmp_path):
        write(tmp_path, "src/repro/__init__.py", '"""Fixture root."""\n')
        write(tmp_path, "src/repro/trust/__init__.py", '"""Fixture."""\n')
        write(
            tmp_path,
            "src/repro/trust/uplink.py",
            '"""Layer 2 reaching into layer 4."""\n\n'
            "import repro.service.http\n",
        )
        findings = lint(tmp_path, select={"AR01"}).active_findings()
        assert len(findings) == 1
        assert "domain, layer 2" in findings[0].message
        assert "application, layer 4" in findings[0].message

    def test_ar01_allows_downward_and_external_imports(self, tmp_path):
        write(tmp_path, "src/repro/__init__.py", '"""Fixture root."""\n')
        write(
            tmp_path,
            "src/repro/trust/good.py",
            '"""Layer 2 importing down and out."""\n\n'
            "import json\n"
            "import repro.errors\n"
            "from repro.signal import windows\n",
        )
        assert lint(tmp_path, select={"AR01"}).active_findings() == []

    def test_ar01_fences_devtools_both_ways(self, tmp_path):
        write(tmp_path, "src/repro/__init__.py", '"""Fixture root."""\n')
        write(
            tmp_path,
            "src/repro/trust/leak.py",
            '"""Runtime module importing the linter."""\n\n'
            "from repro.devtools import run_lint\n",
        )
        write(
            tmp_path,
            "src/repro/devtools/leak.py",
            '"""Linter importing runtime code."""\n\n'
            "from repro.trust import records\n",
        )
        findings = lint(tmp_path, select={"AR01"}).active_findings()
        messages = " | ".join(f.message for f in findings)
        assert len(findings) == 2
        assert "only the interface layer" in messages
        assert "linter must not depend" in messages

    def test_ar02_flags_top_level_cycle(self, tmp_path):
        write(
            tmp_path,
            "pkgc/x.py",
            '"""Cycle member."""\n\nimport pkgc.y\n',
        )
        write(
            tmp_path,
            "pkgc/y.py",
            '"""Cycle member."""\n\nimport pkgc.x\n',
        )
        findings = lint(tmp_path, select={"AR02"}).active_findings()
        assert len(findings) == 2
        assert all("import cycle" in f.message for f in findings)
        assert {f.path for f in findings} == {"pkgc/x.py", "pkgc/y.py"}

    def test_ar02_lazy_import_breaks_the_cycle(self, tmp_path):
        write(
            tmp_path,
            "pkgc/x.py",
            '"""Eager half."""\n\nimport pkgc.y\n',
        )
        write(
            tmp_path,
            "pkgc/y.py",
            '"""Lazy half: the sanctioned way to break a cycle."""\n\n\n'
            "def late():\n"
            '    """Imports only when called."""\n'
            "    import pkgc.x\n"
            "    return pkgc.x\n\n\n"
            "LATE = late\n",
        )
        assert lint(tmp_path, select={"AR02"}).active_findings() == []


# ---------------------------------------------------------------------------
# EX: exception flow
# ---------------------------------------------------------------------------


class TestExceptionRules:
    def test_ex02_flags_leaking_main(self, tmp_path):
        write(
            tmp_path,
            "pkg/cli.py",
            '"""Fixture."""\n\n\n'
            "def main():\n"
            '    """Leaks to the interpreter."""\n'
            '    raise RuntimeError("boom")\n',
        )
        findings = lint(tmp_path, select={"EX02"}).active_findings()
        assert len(findings) == 1
        assert "RuntimeError" in findings[0].message

    def test_ex02_interprocedural_escape_through_callee(self, tmp_path):
        write(
            tmp_path,
            "pkg/cli.py",
            '"""Fixture."""\n\n\n'
            "def helper():\n"
            '    """Raises."""\n'
            '    raise ValueError("bad")\n\n\n'
            "def main():\n"
            '    """Calls helper without catching."""\n'
            "    return helper()\n",
        )
        findings = lint(tmp_path, select={"EX02"}).active_findings()
        assert len(findings) == 1
        assert "ValueError" in findings[0].message

    def test_ex02_catching_the_hierarchy_silences(self, tmp_path):
        write(
            tmp_path,
            "pkg/cli.py",
            '"""Fixture."""\n\n\n'
            "def helper():\n"
            '    """Raises a ValueError subclass context."""\n'
            '    raise ValueError("bad")\n\n\n'
            "def main():\n"
            '    """Catches through the hierarchy."""\n'
            "    try:\n"
            "        return helper()\n"
            "    except Exception:\n"
            "        return 1\n",
        )
        assert lint(tmp_path, select={"EX02"}).active_findings() == []

    def test_ex01_flags_handler_escape(self, tmp_path):
        write(
            tmp_path,
            "pkg/http.py",
            '"""Fixture."""\n\n'
            "from http.server import BaseHTTPRequestHandler\n\n\n"
            "class Handler(BaseHTTPRequestHandler):\n"
            '    """Handler that drops the connection."""\n\n'
            "    def do_GET(self):\n"
            '        """Lets ValueError escape."""\n'
            '        raise ValueError("boom")\n\n\n'
            "APP = Handler\n",
        )
        findings = lint(tmp_path, select={"EX01"}).active_findings()
        assert len(findings) == 1
        assert "ValueError" in findings[0].message
        assert "do_GET" in findings[0].message


# ---------------------------------------------------------------------------
# DX: dead exports and definitions
# ---------------------------------------------------------------------------


class TestDeadCodeRules:
    def test_dx01_flags_export_nothing_references(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n'
            '__all__ = ["dead_export"]\n\n\n'
            "def dead_export():\n"
            '    """Nothing references this."""\n'
            "    return None\n",
        )
        findings = lint(tmp_path, select={"DX01"}).active_findings()
        assert len(findings) == 1
        assert "dead_export" in findings[0].message
        assert findings[0].line == 3

    def test_dx01_test_reference_keeps_export_alive(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n'
            '__all__ = ["live_export"]\n\n\n'
            "def live_export():\n"
            '    """Referenced by a test."""\n'
            "    return None\n",
        )
        write(
            tmp_path,
            "tests/test_mod.py",
            '"""Consumer."""\n\nfrom pkg.mod import live_export\n\n'
            "RESULT = live_export\n",
        )
        result = run_lint(
            [tmp_path / "pkg"], project_root=tmp_path, select={"DX01"}
        )
        assert result.active_findings() == []

    def test_dx02_flags_unreferenced_definition(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n\n'
            "def unused_thing():\n"
            '    """Dead weight."""\n'
            "    return 1\n",
        )
        findings = lint(tmp_path, select={"DX02"}).active_findings()
        assert len(findings) == 1
        assert "unused_thing" in findings[0].message

    def test_dx02_exemptions(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture: decorated, dunder-adjacent, and main are exempt."""\n\n'
            "import functools\n\n\n"
            "@functools.lru_cache\n"
            "def registered():\n"
            '    """Decorators count as a use."""\n'
            "    return 1\n\n\n"
            "def main():\n"
            '    """Entry points are exempt."""\n'
            "    return 0\n",
        )
        assert lint(tmp_path, select={"DX02"}).active_findings() == []


# ---------------------------------------------------------------------------
# DP: durability-protocol rules over interprocedural effect summaries
# ---------------------------------------------------------------------------


class TestEffectRuleRegistration:
    def test_new_families_are_registered_under_their_ids(self):
        from repro.devtools.analysis.rules_crossproc import (
            BlockingFileLockRule,
            SpawnUnderLockRule,
        )
        from repro.devtools.analysis.rules_durability import (
            AtomicReplaceRule,
            OrderingContractRule,
            UnflushedWriteRule,
        )
        from repro.devtools.analysis.rules_serialization import (
            NewKeyDefaultRule,
            StateKeySymmetryRule,
            VersionUpgradePathRule,
        )
        from repro.devtools.core import all_rules

        catalog = all_rules()
        assert catalog["DP01"] is AtomicReplaceRule
        assert catalog["DP02"] is OrderingContractRule
        assert catalog["DP03"] is UnflushedWriteRule
        assert catalog["SD01"] is StateKeySymmetryRule
        assert catalog["SD02"] is VersionUpgradePathRule
        assert catalog["SD03"] is NewKeyDefaultRule
        assert catalog["CC04"] is BlockingFileLockRule
        assert catalog["CC05"] is SpawnUnderLockRule


_DIR_FSYNC = (
    "def flush_dir(directory):\n"
    '    """Makes directory-entry mutations durable."""\n'
    "    fd = os.open(directory, os.O_RDONLY)\n"
    "    try:\n"
    "        os.fsync(fd)\n"
    "    finally:\n"
    "        os.close(fd)\n"
)


class TestDurabilityRules:
    def test_dp01_flags_rename_of_unfsynced_write(self, tmp_path):
        write(
            tmp_path,
            "pkg/pub.py",
            "import os\n\n\n"
            "def publish(tmp, final):\n"
            '    handle = open(tmp, "w")\n'
            '    handle.write("x")\n'
            "    handle.close()\n"
            "    os.replace(tmp, final)\n",
        )
        result = lint(tmp_path, select={"DP01"})
        messages = [f.message for f in result.active_findings()]
        assert any("torn file" in m for m in messages)
        assert any("directory fsync" in m for m in messages)

    def test_dp01_full_protocol_is_clean(self, tmp_path):
        write(
            tmp_path,
            "pkg/pub.py",
            "import os\n\n\n" + _DIR_FSYNC + "\n\n"
            "def publish(tmp, final, directory):\n"
            '    handle = open(tmp, "w")\n'
            '    handle.write("x")\n'
            "    handle.flush()\n"
            "    os.fsync(handle.fileno())\n"
            "    handle.close()\n"
            "    os.replace(tmp, final)\n"
            "    flush_dir(directory)\n",
        )
        result = lint(tmp_path, select={"DP01"})
        assert result.active_findings() == []

    def test_dp01_sees_dir_fsync_through_a_callee(self, tmp_path):
        # The dir fsync lives two files away; the flattened effect
        # sequence still covers the unlink.
        write(tmp_path, "pkg/__init__.py", "")
        write(tmp_path, "pkg/util.py", "import os\n\n\n" + _DIR_FSYNC)
        write(
            tmp_path,
            "pkg/gc.py",
            "import os\n\n"
            "from pkg.util import flush_dir\n\n\n"
            "def drop(path, directory):\n"
            "    os.unlink(path)\n"
            "    flush_dir(directory)\n",
        )
        result = lint(tmp_path, select={"DP01"})
        assert result.active_findings() == []

    def test_dp02_flags_ack_before_append(self, tmp_path):
        _seed_acceptance_fixture(tmp_path)
        result = lint(tmp_path, select={"DP02"})
        findings = result.active_findings()
        assert [f.path for f in findings] == ["src/repro/service/ackflow.py"]
        assert "wal_append" in findings[0].message

    def test_dp02_append_before_ack_is_clean(self, tmp_path):
        _seed_acceptance_fixture(tmp_path)
        ackflow = tmp_path / "src/repro/service/ackflow.py"
        text = ackflow.read_text()
        assert '        self.ack(201, "ok")\n        self.log.append(entry)\n' in text
        ackflow.write_text(
            text.replace(
                '        self.ack(201, "ok")\n        self.log.append(entry)\n',
                '        self.log.append(entry)\n        self.ack(201, "ok")\n',
            )
        )
        result = lint(tmp_path, select={"DP02"})
        assert result.active_findings() == []

    def test_dp03_flags_fsync_of_unflushed_handle(self, tmp_path):
        write(
            tmp_path,
            "pkg/sync.py",
            "import os\n\n\n"
            "def persist(path):\n"
            '    handle = open(path, "w")\n'
            '    handle.write("x")\n'
            "    os.fsync(handle.fileno())\n"
            "    handle.close()\n",
        )
        result = lint(tmp_path, select={"DP03"})
        assert [f.rule for f in result.active_findings()] == ["DP03"]
        assert "flush" in result.active_findings()[0].message

    def test_dp03_flushed_handle_is_clean(self, tmp_path):
        write(
            tmp_path,
            "pkg/sync.py",
            "import os\n\n\n"
            "def persist(path):\n"
            '    handle = open(path, "w")\n'
            '    handle.write("x")\n'
            "    handle.flush()\n"
            "    os.fsync(handle.fileno())\n"
            "    handle.close()\n",
        )
        result = lint(tmp_path, select={"DP03"})
        assert result.active_findings() == []


# ---------------------------------------------------------------------------
# SD: serialization-contract rules
# ---------------------------------------------------------------------------


class TestSerializationRules:
    def test_sd01_flags_key_asymmetry_both_ways(self, tmp_path):
        write(
            tmp_path,
            "pkg/state.py",
            "class Box:\n"
            "    def state_dict(self):\n"
            '        return {"kept": 1, "orphan": 2}\n\n'
            "    def load_state(self, state):\n"
            '        self.kept = state["kept"]\n'
            '        self.ghost = state["ghost"]\n',
        )
        result = lint(tmp_path, select={"SD01"})
        messages = sorted(f.message for f in result.active_findings())
        assert len(messages) == 2
        assert "'ghost'" in messages[0] and "never" in messages[0]
        assert "'orphan'" in messages[1] and "no method" in messages[1]

    def test_sd01_symmetric_pair_is_clean(self, tmp_path):
        write(
            tmp_path,
            "pkg/state.py",
            "class Box:\n"
            "    def state_dict(self):\n"
            '        return {"kept": self.kept}\n\n'
            "    def load_state(self, state):\n"
            '        self.kept = state["kept"]\n',
        )
        result = lint(tmp_path, select={"SD01"})
        assert result.active_findings() == []

    def test_sd02_flags_version_bump_without_upgrade(self, tmp_path):
        _seed_acceptance_fixture(tmp_path)
        result = lint(tmp_path, select={"SD02"})
        findings = result.active_findings()
        assert [f.path for f in findings] == ["src/repro/service/snapver.py"]
        assert "version 3" in findings[0].message

    def test_sd02_version_with_upgrade_compare_is_clean(self, tmp_path):
        write(
            tmp_path,
            "pkg/state.py",
            "class Box:\n"
            "    def state_dict(self):\n"
            '        return {"version": 2, "kept": self.kept}\n\n'
            "    def load_state(self, state):\n"
            '        if int(state.get("version", 1)) < 2:\n'
            "            state = dict(state)\n"
            '        self.kept = state["kept"]\n',
        )
        result = lint(tmp_path, select={"SD02"})
        assert result.active_findings() == []

    def test_sd03_flags_strict_read_of_new_key(self, tmp_path):
        _seed_acceptance_fixture(tmp_path)
        result = lint(tmp_path, select={"SD03"})
        findings = result.active_findings()
        assert [f.path for f in findings] == ["src/repro/service/snapkeys.py"]
        assert "'extras'" in findings[0].message
        assert ".get" in findings[0].message

    def test_sd03_defaulted_read_is_clean(self, tmp_path):
        _seed_acceptance_fixture(tmp_path)
        snapkeys = tmp_path / "src/repro/service/snapkeys.py"
        text = snapkeys.read_text()
        snapkeys.write_text(
            text.replace(
                'self.extras = list(state["extras"])',
                'self.extras = list(state.get("extras", []))',
            )
        )
        result = lint(tmp_path, select={"SD03"})
        assert result.active_findings() == []


# ---------------------------------------------------------------------------
# CC04-CC05: cross-process lock rules
# ---------------------------------------------------------------------------


class TestCrossProcessRules:
    def test_cc04_flags_blocking_flock_under_lock(self, tmp_path):
        _seed_acceptance_fixture(tmp_path)
        result = lint(tmp_path, select={"CC04"})
        findings = result.active_findings()
        assert [f.path for f in findings] == ["src/repro/service/procfix.py"]
        assert "LOCK_NB" in findings[0].message

    def test_cc04_nonblocking_flock_is_clean(self, tmp_path):
        _seed_acceptance_fixture(tmp_path)
        procfix = tmp_path / "src/repro/service/procfix.py"
        procfix.write_text(
            procfix.read_text().replace(
                "fcntl.flock(fd, fcntl.LOCK_EX)",
                "fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)",
            )
        )
        result = lint(tmp_path, select={"CC04"})
        assert result.active_findings() == []

    def test_cc04_sees_flock_through_a_callee(self, tmp_path):
        write(
            tmp_path,
            "pkg/locks.py",
            "import fcntl\n"
            "import threading\n\n\n"
            "def grab(fd):\n"
            "    fcntl.flock(fd, fcntl.LOCK_EX)\n\n\n"
            "class Owner:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n\n"
            "    def attach(self, fd):\n"
            "        with self._lock:\n"
            "            grab(fd)\n",
        )
        result = lint(tmp_path, select={"CC04"})
        findings = result.active_findings()
        assert len(findings) == 1
        assert "reaches a blocking fcntl lock" in findings[0].message

    def test_cc05_flags_fork_under_lock(self, tmp_path):
        _seed_acceptance_fixture(tmp_path)
        result = lint(tmp_path, select={"CC05"})
        findings = result.active_findings()
        assert [f.path for f in findings] == ["src/repro/service/procfix.py"]
        assert "os.fork" in findings[0].message

    def test_cc05_fork_without_lock_is_clean(self, tmp_path):
        write(
            tmp_path,
            "pkg/spawn.py",
            "import os\n\n\n"
            "def run_child():\n"
            "    return os.fork()\n",
        )
        result = lint(tmp_path, select={"CC05"})
        assert result.active_findings() == []

    def test_cc05_flags_spawn_after_flock_in_same_function(self, tmp_path):
        write(
            tmp_path,
            "pkg/spawn.py",
            "import fcntl\n"
            "import os\n"
            "import subprocess\n\n\n"
            "def locked_child(fd):\n"
            "    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)\n"
            '    subprocess.run(["true"])\n',
        )
        result = lint(tmp_path, select={"CC05"})
        findings = result.active_findings()
        assert len(findings) == 1
        assert "inherits the locked fd" in findings[0].message


# ---------------------------------------------------------------------------
# Effect summaries and the incremental cache
# ---------------------------------------------------------------------------


class TestEffectConeInvalidation:
    def _seed(self, root: Path) -> None:
        write(root, "src/repro/__init__.py", '"""Fixture root."""\n')
        write(root, "src/repro/service/__init__.py", '"""Fixture svc."""\n')
        write(
            root,
            "src/repro/service/callee.py",
            '"""Durability helper fixture."""\n\n'
            "import os\n\n\n" + _DIR_FSYNC + "\n\n"
            "FLUSH_DIR = flush_dir\n",
        )
        write(
            root,
            "src/repro/service/caller.py",
            '"""Publisher fixture depending on the helper."""\n\n'
            "import os\n\n"
            "from repro.service.callee import flush_dir\n\n\n"
            "def publish(tmp, final, directory):\n"
            '    """Atomic replace, dir fsync delegated to the helper."""\n'
            "    os.replace(tmp, final)\n"
            "    flush_dir(directory)\n\n\n"
            "PUBLISH = publish\n",
        )

    def test_editing_callee_fsync_reanalyzes_caller_cone(self, tmp_path):
        self._seed(tmp_path)
        first = lint(tmp_path, select={"DP01"})
        assert first.cache_status == "cold"
        assert first.active_findings() == []
        # Remove the fsync from the callee: the caller's rename loses
        # its directory-fsync cover even though caller.py is untouched.
        callee = tmp_path / "src/repro/service/callee.py"
        callee.write_text(
            callee.read_text().replace("        os.fsync(fd)\n", "        pass\n")
        )
        second = lint(tmp_path, select={"DP01"})
        assert second.cache_status == "partial"
        assert "src/repro/service/caller.py" in second.reanalyzed
        got = {(f.rule, f.path) for f in second.active_findings()}
        assert ("DP01", "src/repro/service/caller.py") in got

    def test_unchanged_tree_reuses_effect_findings(self, tmp_path):
        self._seed(tmp_path)
        lint(tmp_path, select={"DP01"})
        again = lint(tmp_path, select={"DP01"})
        assert again.cache_status == "hit"
        assert again.reanalyzed == []
        assert again.active_findings() == []


# ---------------------------------------------------------------------------
# The seeded acceptance fixture: one violation per family, end to end.
# ---------------------------------------------------------------------------


def _seed_acceptance_fixture(root: Path) -> None:
    write(root, "src/repro/__init__.py", '"""Fixture root package."""\n')
    write(root, "src/repro/trust/__init__.py", '"""Fixture trust."""\n')
    write(root, "src/repro/service/__init__.py", '"""Fixture service."""\n')
    # DI02: an out-of-domain trust write.
    write(
        root,
        "src/repro/trust/records.py",
        '"""Trust records fixture."""\n\n\n'
        "def promote():\n"
        '    """Raises trust past its ceiling."""\n'
        "    trust = 1.5\n"
        "    return trust\n\n\n"
        "PROMOTE = promote\n",
    )
    # AR01: a layering violation (domain -> application).
    write(
        root,
        "src/repro/trust/uplink.py",
        '"""Upward-import fixture."""\n\n'
        "import repro.service.http\n",
    )
    # EX01: a non-ReproError escaping an HTTP handler.
    write(
        root,
        "src/repro/service/http.py",
        '"""HTTP handler fixture."""\n\n'
        "from http.server import BaseHTTPRequestHandler\n\n\n"
        "class Handler(BaseHTTPRequestHandler):\n"
        '    """Fixture handler."""\n\n'
        "    def do_GET(self):\n"
        '        """Drops the connection on bad input."""\n'
        '        raise ValueError("boom")\n\n\n'
        "APP = Handler\n",
    )
    # DX01: a dead export.
    write(
        root,
        "src/repro/trust/dead.py",
        '"""Dead-export fixture."""\n\n'
        '__all__ = ["dead_export"]\n\n\n'
        "def dead_export():\n"
        '    """Nothing references this export."""\n'
        "    return None\n",
    )
    # DP01 + DP03: torn rename plus fsync of an unflushed handle.
    write(
        root,
        "src/repro/service/walx.py",
        '"""Atomic-publish fixture (torn rename, unflushed fsync)."""\n\n'
        "import os\n\n\n"
        "def publish(tmp, final):\n"
        '    """Publishes tmp at final without durability discipline."""\n'
        '    handle = open(tmp, "w")\n'
        '    handle.write("state")\n'
        "    os.fsync(handle.fileno())\n"
        "    handle.close()\n"
        "    os.replace(tmp, final)\n\n\n"
        "PUBLISH = publish\n",
    )
    # DP02: acking the client before the entry reaches the log.
    write(
        root,
        "src/repro/service/ackflow.py",
        '"""Ack-before-append fixture for declared orderings."""\n\n'
        "__effect_contracts__ = {\n"
        '    "providers": {"Log.append": "wal_append"},\n'
        '    "ack_providers": ["Server.ack"],\n'
        '    "orderings": {"Server.handle": [["wal_append", "ack"]]},\n'
        "}\n\n\n"
        "class Log:\n"
        '    """Fixture append-only log."""\n\n'
        "    def __init__(self):\n"
        "        self.entries = []\n\n"
        "    def append(self, entry):\n"
        '        """Records one entry."""\n'
        "        self.entries.append(entry)\n\n\n"
        "class Server:\n"
        '    """Fixture server that acks before logging."""\n\n'
        "    def __init__(self):\n"
        "        self.log = Log()\n\n"
        "    def ack(self, status, message):\n"
        '        """Sends a status response."""\n'
        "        return (status, message)\n\n"
        "    def handle(self, entry):\n"
        '        """Acks the client before the entry is logged."""\n'
        '        self.ack(201, "ok")\n'
        "        self.log.append(entry)\n\n\n"
        "SERVER = Server\n"
        "LOGGER = Log\n",
    )
    # SD01: load_state reads a key state_dict never writes.
    write(
        root,
        "src/repro/service/snapstate.py",
        '"""State-dict key-asymmetry fixture."""\n\n\n'
        "class Snapshotter:\n"
        '    """Round-trips its hot window through snapshots."""\n\n'
        "    def __init__(self):\n"
        "        self.hot = []\n\n"
        "    def state_dict(self):\n"
        '        """Serialized state."""\n'
        '        return {"hot": list(self.hot)}\n\n'
        "    def load_state(self, state):\n"
        '        """Restores from a snapshot."""\n'
        '        self.hot = list(state["hot"])\n'
        '        self.extra = state["missing"]\n\n\n'
        "SNAPSHOTTER = Snapshotter\n",
    )
    # SD02: snapshot version bumped to 3 with only a v1 upgrade path.
    write(
        root,
        "src/repro/service/snapver.py",
        '"""Version-bump-without-upgrade fixture."""\n\n\n'
        "class Versioned:\n"
        '    """Writes snapshot version 3 with only a v2 upgrade path."""\n\n'
        "    def __init__(self):\n"
        "        self.hot = []\n\n"
        "    def state_dict(self):\n"
        '        """Serialized state (format v3)."""\n'
        '        return {"version": 3, "hot": list(self.hot)}\n\n'
        "    def load_state(self, state):\n"
        '        """Restores from a snapshot, upgrading v1 only."""\n'
        '        version = int(state.get("version", 1))\n'
        "        if version < 2:\n"
        "            state = dict(state)\n"
        '            state.setdefault("hot", [])\n'
        '        self.hot = list(state["hot"])\n\n\n'
        "VERSIONED = Versioned\n",
    )
    # SD03: a key introduced in v2 loaded strictly (no default).
    write(
        root,
        "src/repro/service/snapkeys.py",
        '"""New-key-without-default fixture."""\n\n'
        "__effect_contracts__ = {\n"
        '    "state_keys_since": {"Keyed": {"extras": 2}},\n'
        "}\n\n\n"
        "class Keyed:\n"
        '    """Strictly loads a key that v1 snapshots do not have."""\n\n'
        "    def __init__(self):\n"
        "        self.base = []\n"
        "        self.extras = []\n\n"
        "    def state_dict(self):\n"
        '        """Serialized state (format v2)."""\n'
        "        return {\n"
        '            "version": 2,\n'
        '            "base": list(self.base),\n'
        '            "extras": list(self.extras),\n'
        "        }\n\n"
        "    def load_state(self, state):\n"
        '        """Restores from a snapshot."""\n'
        '        version = int(state.get("version", 1))\n'
        "        if version < 2:\n"
        "            state = dict(state)\n"
        '        self.base = list(state["base"])\n'
        '        self.extras = list(state["extras"])\n\n\n'
        "KEYED = Keyed\n",
    )
    # CC04 + CC05: blocking flock and fork while a lock is held.
    write(
        root,
        "src/repro/service/procfix.py",
        '"""Fork/flock-under-lock fixture."""\n\n'
        "import fcntl\n"
        "import os\n"
        "import threading\n\n\n"
        "class Spawner:\n"
        '    """Holds its lock across cross-process operations."""\n\n'
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n\n"
        "    def attach(self, fd):\n"
        '        """Takes the file lock while the instance lock is held."""\n'
        "        with self._lock:\n"
        "            fcntl.flock(fd, fcntl.LOCK_EX)\n\n"
        "    def spawn(self):\n"
        '        """Forks while the instance lock is held."""\n'
        "        with self._lock:\n"
        "            return os.fork()\n\n\n"
        "SPAWNER = Spawner\n",
    )


class TestAcceptanceFixture:
    EXPECTED = {
        ("DI02", "src/repro/trust/records.py"),
        ("AR01", "src/repro/trust/uplink.py"),
        ("EX01", "src/repro/service/http.py"),
        ("DX01", "src/repro/trust/dead.py"),
        ("DP01", "src/repro/service/walx.py"),
        ("DP03", "src/repro/service/walx.py"),
        ("DP02", "src/repro/service/ackflow.py"),
        ("SD01", "src/repro/service/snapstate.py"),
        ("SD02", "src/repro/service/snapver.py"),
        ("SD03", "src/repro/service/snapkeys.py"),
        ("CC04", "src/repro/service/procfix.py"),
        ("CC05", "src/repro/service/procfix.py"),
    }

    def test_exactly_the_seeded_findings(self, tmp_path):
        _seed_acceptance_fixture(tmp_path)
        result = lint(tmp_path)
        got = {(f.rule, f.path) for f in result.active_findings()}
        assert got == self.EXPECTED
        assert len(result.active_findings()) == len(self.EXPECTED)

    def test_human_reporter_shows_all_families(self, tmp_path, capsys):
        _seed_acceptance_fixture(tmp_path)
        code = lint_main(
            [str(tmp_path / "src"), "--project-root", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 1
        for rule, path in self.EXPECTED:
            assert rule in out
            assert path in out
        assert "12 finding(s)" in out

    def test_json_reporter_shows_all_families(self, tmp_path, capsys):
        _seed_acceptance_fixture(tmp_path)
        code = lint_main(
            [
                str(tmp_path / "src"),
                "--project-root",
                str(tmp_path),
                "--format=json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["active_count"] == 12
        got = {(f["rule"], f["path"]) for f in payload["findings"]}
        assert got == self.EXPECTED
        assert payload["cache_status"] == "cold"

    def test_sarif_reporter_carries_all_families(self, tmp_path, capsys):
        _seed_acceptance_fixture(tmp_path)
        code = lint_main(
            [
                str(tmp_path / "src"),
                "--project-root",
                str(tmp_path),
                "--format=sarif",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        catalog = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"DP01", "DP02", "DP03", "SD01", "SD02", "SD03", "CC04", "CC05"} <= catalog
        got = {
            (
                entry["ruleId"],
                entry["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
            )
            for entry in run["results"]
        }
        assert got == self.EXPECTED
        assert all("suppressions" not in entry for entry in run["results"])


# ---------------------------------------------------------------------------
# Incremental cache
# ---------------------------------------------------------------------------


def _seed_clean_tree(root: Path) -> None:
    write(root, "src/repro/__init__.py", '"""Fixture root package."""\n')
    write(root, "src/repro/trust/__init__.py", '"""Fixture trust."""\n')
    write(
        root,
        "src/repro/trust/a.py",
        '"""Fixture a."""\n\n\n'
        "def helper():\n"
        '    """Shared helper."""\n'
        "    return 0.5\n",
    )
    write(
        root,
        "src/repro/trust/b.py",
        '"""Fixture b (depends on a)."""\n\n'
        "from repro.trust.a import helper\n\n\n"
        "def wrap():\n"
        '    """Wraps helper."""\n'
        "    return helper()\n\n\n"
        "WRAP = wrap\n",
    )
    write(
        root,
        "src/repro/trust/c.py",
        '"""Fixture c (independent)."""\n\n\n'
        "def solo():\n"
        '    """No project imports."""\n'
        "    return 0.25\n\n\n"
        "SOLO = solo\n",
    )


class TestIncrementalCache:
    def test_unchanged_tree_is_a_full_hit(self, tmp_path):
        _seed_clean_tree(tmp_path)
        first = lint(tmp_path)
        assert first.cache_status == "cold"
        assert first.active_findings() == []
        second = lint(tmp_path)
        assert second.cache_status == "hit"
        assert second.reanalyzed == []
        assert second.active_findings() == []
        assert second.files_total == first.files_total

    def test_editing_one_file_reanalyzes_only_dependents(self, tmp_path):
        _seed_clean_tree(tmp_path)
        lint(tmp_path)
        a = tmp_path / "src/repro/trust/a.py"
        a.write_text(a.read_text() + "\n# touched\n")
        result = lint(tmp_path)
        assert result.cache_status == "partial"
        assert result.reanalyzed == [
            "src/repro/trust/a.py",
            "src/repro/trust/b.py",
        ]
        assert result.active_findings() == []

    def test_corrupt_cache_falls_back_to_clean_cold_run(self, tmp_path):
        _seed_clean_tree(tmp_path)
        first = lint(tmp_path)
        manifest = tmp_path / ".lint-cache" / "analysis.json"
        assert manifest.is_file()
        manifest.write_text("{{{ not json")
        again = lint(tmp_path)
        assert again.cache_status == "cold"
        assert sorted(again.reanalyzed) == sorted(first.reanalyzed)
        assert again.active_findings() == []

    def test_cached_findings_survive_a_hit(self, tmp_path):
        _seed_acceptance_fixture(tmp_path)
        first = lint(tmp_path)
        second = lint(tmp_path)
        assert second.cache_status == "hit"
        assert second.reanalyzed == []
        assert {(f.rule, f.path) for f in second.active_findings()} == {
            (f.rule, f.path) for f in first.active_findings()
        }

    def test_external_reference_change_reruns_global_rules(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n\n'
            "def unused_thing():\n"
            '    """Dead until a test references it."""\n'
            "    return 1\n",
        )
        first = run_lint(
            [tmp_path / "pkg"], project_root=tmp_path, select={"DX02"}
        )
        assert [f.rule for f in first.active_findings()] == ["DX02"]
        # No linted file changes, but a new external consumer appears.
        write(
            tmp_path,
            "tests/test_mod.py",
            '"""Consumer."""\n\nfrom pkg.mod import unused_thing\n',
        )
        second = run_lint(
            [tmp_path / "pkg"], project_root=tmp_path, select={"DX02"}
        )
        assert second.active_findings() == []
        assert second.cache_status in ("partial", "cold")

    def test_contract_change_invalidates_the_whole_manifest(self, tmp_path):
        write(
            tmp_path,
            "pkg/mod.py",
            '"""Fixture."""\n\n'
            "__lint_contracts__ = {\n"
            '    "use": {"params": {"x": "[0, 2]"}},\n'
            "}\n\n\n"
            "def use(x):\n"
            '    """Contracted."""\n'
            "    return min(max(x, 0.0), 2.0)\n\n\n"
            "USES = (use,)\n",
        )
        lint(tmp_path, select={"DI01"})
        mod = tmp_path / "pkg/mod.py"
        mod.write_text(mod.read_text().replace("[0, 2]", "[0, 1]"))
        result = lint(tmp_path, select={"DI01"})
        # The contract digest is part of the signature: full cold run.
        assert result.cache_status == "cold"

    def test_no_cache_flag_disables_the_cache(self, tmp_path):
        _seed_clean_tree(tmp_path)
        result = lint(tmp_path, use_cache=False)
        assert result.cache_status == "disabled"
        assert not (tmp_path / ".lint-cache").exists()


# ---------------------------------------------------------------------------
# CLI: --strict and --changed
# ---------------------------------------------------------------------------


_NH01_FIXTURE = (
    "def decide(trust: float) -> bool:\n"
    "    return trust == 0.5\n"
    "\n\ncheck = decide\n"
)


class TestStrictMode:
    def test_stale_baseline_fails_only_under_strict(self, tmp_path, capsys):
        mod = write(tmp_path, "mod.py", _NH01_FIXTURE)
        root = ["--project-root", str(tmp_path)]
        assert lint_main([str(mod)] + root + ["--update-baseline"]) == 0
        # Fix the finding: the baseline entry goes stale.
        mod.write_text(_NH01_FIXTURE.replace("==", ">"))
        assert lint_main([str(mod)] + root) == 0
        assert lint_main([str(mod)] + root + ["--strict"]) == 1
        err = capsys.readouterr().err
        assert "stale baseline" in err

    def test_strict_is_quiet_when_baseline_is_fresh(self, tmp_path, capsys):
        mod = write(tmp_path, "mod.py", _NH01_FIXTURE)
        root = ["--project-root", str(tmp_path)]
        assert lint_main([str(mod)] + root + ["--update-baseline"]) == 0
        assert lint_main([str(mod)] + root + ["--strict"]) == 0
        capsys.readouterr()


@pytest.mark.skipif(shutil.which("git") is None, reason="git unavailable")
class TestChangedMode:
    @staticmethod
    def _git(root: Path, *args: str) -> None:
        subprocess.run(
            ["git", "-c", "user.email=t@example.com", "-c", "user.name=t"]
            + list(args),
            cwd=str(root),
            check=True,
            capture_output=True,
        )

    def _repo(self, root: Path) -> None:
        write(root, "good.py", "X = 1\n")
        write(root, "bad.py", "Y = 2\n")
        self._git(root, "init", "-q")
        self._git(root, "add", ".")
        self._git(root, "commit", "-qm", "init")

    def test_changed_lints_only_modified_files(self, tmp_path, capsys):
        self._repo(tmp_path)
        (tmp_path / "bad.py").write_text(_NH01_FIXTURE)
        code = lint_main(
            ["--changed", "--project-root", str(tmp_path), "--format=json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["files_checked"] == 1
        assert {f["path"] for f in payload["findings"]} == {"bad.py"}

    def test_changed_with_clean_tree_exits_zero(self, tmp_path, capsys):
        self._repo(tmp_path)
        code = lint_main(["--changed", "--project-root", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no changed python files" in out

    def test_changed_picks_up_untracked_files(self, tmp_path, capsys):
        self._repo(tmp_path)
        write(tmp_path, "fresh.py", _NH01_FIXTURE)
        code = lint_main(
            ["--changed", "--project-root", str(tmp_path), "--format=json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert {f["path"] for f in payload["findings"]} == {"fresh.py"}


# ---------------------------------------------------------------------------
# Runtime domain-boundary fixes surfaced by DI (regression pins)
# ---------------------------------------------------------------------------


class TestAsArraysDomainValidation:
    def test_accepts_the_closed_unit_interval(self):
        from repro.aggregation.base import as_arrays

        values, trusts = as_arrays([0.0, 0.5, 1.0], [1.0, 0.0, 0.5])
        assert values.shape == trusts.shape == (3,)

    @pytest.mark.parametrize("bad", [[1.2, 0.5], [-0.1, 0.5]])
    def test_rejects_out_of_domain_ratings(self, bad):
        from repro.aggregation.base import as_arrays

        with pytest.raises(ConfigurationError, match="ratings"):
            as_arrays(bad, [0.5, 0.5])

    @pytest.mark.parametrize("bad", [[1.0001, 0.5], [-0.0001, 0.5]])
    def test_rejects_out_of_domain_trusts(self, bad):
        from repro.aggregation.base import as_arrays

        with pytest.raises(ConfigurationError, match="trusts"):
            as_arrays([0.5, 0.5], bad)

    def test_prior_error_contracts_are_preserved(self):
        from repro.aggregation.base import as_arrays

        with pytest.raises(EmptyWindowError):
            as_arrays([], [])
        with pytest.raises(ValueError, match="parallel"):
            as_arrays([0.5], [0.5, 0.5])


class TestMultipathDomainValidation:
    def test_boundary_values_are_legal(self):
        from repro.trust.entropy_trust import multipath

        assert multipath([1.0], [-1.0]) == -1.0
        assert multipath([], []) == 0.0

    def test_rejects_out_of_domain_recommendation_trusts(self):
        from repro.trust.entropy_trust import multipath

        with pytest.raises(ConfigurationError, match="recommendation_trusts"):
            multipath([1.5, 0.5], [0.5, 0.5])

    def test_rejects_out_of_domain_remote_trusts(self):
        from repro.trust.entropy_trust import multipath

        with pytest.raises(ConfigurationError, match="remote_trusts"):
            multipath([0.5, 0.5], [0.5, -2.0])

    def test_weighting_unchanged_for_legal_inputs(self):
        from repro.trust.entropy_trust import multipath

        got = multipath([0.5, -0.5], [1.0, 1.0])
        assert np.isclose(got, 1.0)
