"""Tests for the paper-experiment modules (scaled-down sizes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    REGISTRY,
    baselines,
    detection500,
    fig2_fig3,
    fig4,
    fig5_netflix,
    table1,
)
from repro.experiments.table1 import Table1Config
from repro.simulation.illustrative import IllustrativeConfig


class TestRegistry:
    def test_every_entry_has_runner_reporter_description(self):
        for name, (runner, reporter, description) in REGISTRY.items():
            assert callable(runner)
            assert callable(reporter)
            assert description


class TestFig2Fig3:
    def test_histograms_cover_all_ratings(self):
        result = fig2_fig3.run(seed=0)
        assert result.histogram_honest.sum() == len(result.trace.honest)
        assert result.histogram_attacked.sum() == len(result.trace.attacked)

    def test_value_overlap_is_high(self):
        # The figure's message: unfair ratings hide inside honest levels.
        result = fig2_fig3.run(seed=0)
        assert result.overlap_fraction > 0.8

    def test_report_renders(self):
        report = fig2_fig3.format_report(fig2_fig3.run(seed=0))
        assert "Fig. 2/3" in report
        assert "level" in report


class TestFig4:
    def test_error_drops_inside_attack(self):
        result = fig4.run(seed=0)
        assert result.attack_error_drop > 1.5

    def test_attack_lifts_average(self):
        result = fig4.run(seed=1)
        assert result.peak_average_lift > 0.0

    def test_series_nonempty(self):
        result = fig4.run(seed=0)
        assert result.err_honest.size > 5
        assert result.err_attacked.size > 5
        assert result.avg_filtered.size > 0

    def test_report_renders(self):
        report = fig4.format_report(fig4.run(seed=0))
        assert "error drop factor" in report


class TestDetection500:
    def test_small_run_shapes(self):
        result = detection500.run(n_runs=20, seed=0)
        assert result.n_runs == 20
        assert 0.0 <= result.detection_ratio <= 1.0
        assert 0.0 <= result.false_alarm_ratio <= 1.0
        assert result.attacked_error_minima.shape == (20,)

    def test_detection_beats_false_alarm(self):
        result = detection500.run(n_runs=30, seed=0)
        assert result.detection_ratio > result.false_alarm_ratio + 0.3

    def test_report_mentions_paper_numbers(self):
        report = detection500.format_report(detection500.run(n_runs=10, seed=0))
        assert "0.782" in report
        assert "Detection Ratio" in report

    def test_reproducible(self):
        a = detection500.run(n_runs=10, seed=3)
        b = detection500.run(n_runs=10, seed=3)
        assert a.detection_ratio == b.detection_ratio
        np.testing.assert_array_equal(
            a.honest_error_minima, b.honest_error_minima
        )


class TestFig5:
    def test_error_drops_during_injection(self):
        result = fig5_netflix.run(seed=0)
        assert result.error_drop > 1.5

    def test_injection_adds_ratings(self):
        result = fig5_netflix.run(seed=0)
        assert len(result.attacked) > len(result.original)

    def test_report_renders(self):
        report = fig5_netflix.format_report(fig5_netflix.run(seed=0))
        assert "Netflix" in report


class TestTable1:
    def test_method3_wins(self):
        result = table1.run(n_runs=200, seed=0)
        assert result.best_method() == 3

    def test_all_methods_below_desired(self):
        # Every method under a 50 % downgrade mix lands below 0.8.
        result = table1.run(n_runs=200, seed=0)
        for value in result.aggregates.values():
            assert value < result.desired

    def test_method3_margin_is_large(self):
        result = table1.run(n_runs=200, seed=0)
        others = [v for m, v in result.aggregates.items() if m != 3]
        assert result.aggregates[3] > max(others) + 0.04

    def test_matches_paper_band(self):
        result = table1.run(n_runs=300, seed=1)
        # Shapes, not exact numbers: method 3 within ~0.15 of desired,
        # the rest collapsed toward ~0.6.
        assert abs(result.aggregates[3] - 0.8) < 0.15
        for method in (1, 2, 4):
            assert abs(result.aggregates[method] - 0.6) < 0.08

    def test_std_interpretation_supported(self):
        config = Table1Config(spread_is_std=True)
        result = table1.run(n_runs=100, seed=0, config=config)
        assert result.best_method() == 3

    def test_report_renders(self):
        report = table1.format_report(table1.run(n_runs=50, seed=0))
        assert "method 3" in report
        assert "0.7445" in report


class TestBaselines:
    @pytest.fixture(scope="class")
    def result(self):
        return baselines.run(n_runs=4, seed=0)

    def test_all_detectors_present(self, result):
        assert set(result.table) == {
            "ar_model_error",
            "entropy_change",
            "clustering",
            "endorsement",
            "beta_filter",
            "cusum",
            "variance_ratio",
        }

    def test_ar_detects_moderate_bias(self, result):
        counts = result.table["ar_model_error"]["moderate_bias"]
        assert counts.detection_ratio > 0.4

    def test_baselines_blind_to_moderate_bias(self, result):
        for name in ("entropy_change", "clustering", "endorsement", "beta_filter"):
            counts = result.table[name]["moderate_bias"]
            assert counts.detection_ratio < 0.2, name

    def test_report_renders(self, result):
        report = baselines.format_report(result)
        assert "moderate_bias" in report
