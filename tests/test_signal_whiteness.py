"""Tests for whiteness diagnostics and detrending."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SignalModelError
from repro.signal.detrend import remove_linear_trend, remove_mean
from repro.signal.whiteness import ljung_box, sample_autocorrelation


class TestSampleAutocorrelation:
    def test_rho0_is_one(self, rng):
        rho = sample_autocorrelation(rng.normal(size=100), max_lag=5)
        assert rho[0] == pytest.approx(1.0)

    def test_constant_series_raises(self):
        with pytest.raises(SignalModelError):
            sample_autocorrelation(np.full(20, 0.4), max_lag=3)

    def test_alternating_series_has_negative_lag1(self):
        x = np.tile([1.0, -1.0], 50)
        rho = sample_autocorrelation(x, max_lag=2)
        assert rho[1] < -0.9


class TestLjungBox:
    def test_white_noise_passes(self, rng):
        result = ljung_box(rng.normal(size=500), lags=10)
        assert result.is_white
        assert result.p_value > 0.05

    def test_correlated_series_fails(self, rng):
        noise = rng.normal(size=500)
        x = np.convolve(noise, np.ones(5) / 5, mode="same")
        result = ljung_box(x, lags=10)
        assert not result.is_white
        assert result.p_value < 0.01

    def test_lags_clipped_for_short_series(self, rng):
        result = ljung_box(rng.normal(size=6), lags=10)
        assert result.lags == 4

    def test_too_short_raises(self):
        with pytest.raises(SignalModelError):
            ljung_box(np.array([1.0, 2.0, 3.0]))

    def test_alpha_threshold_respected(self, rng):
        x = rng.normal(size=300)
        loose = ljung_box(x, lags=5, alpha=0.0001)
        assert loose.is_white  # extremely strict alpha rarely rejects noise

    def test_honest_ratings_look_white(self, rng):
        # The paper's premise: mean-removed honest ratings are ~white.
        ratings = np.clip(rng.normal(0.7, 0.45, size=200), 0, 1)
        result = ljung_box(ratings, lags=8)
        assert result.is_white


class TestDetrend:
    def test_remove_mean(self):
        x = remove_mean(np.array([1.0, 2.0, 3.0]))
        assert np.mean(x) == pytest.approx(0.0)

    def test_remove_mean_returns_new_array(self):
        original = np.array([1.0, 2.0])
        result = remove_mean(original)
        assert result is not original
        assert original[0] == 1.0

    def test_remove_linear_trend_kills_ramp(self):
        t = np.linspace(0, 10, 50)
        x = 0.2 + 0.05 * t
        detrended = remove_linear_trend(t, x)
        np.testing.assert_allclose(detrended, 0.0, atol=1e-10)

    def test_remove_linear_trend_preserves_noise_shape(self, rng):
        t = np.linspace(0, 10, 200)
        noise = rng.normal(0, 0.1, size=200)
        x = 0.5 + 0.03 * t + noise
        detrended = remove_linear_trend(t, x)
        assert np.std(detrended) == pytest.approx(np.std(noise), rel=0.1)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            remove_linear_trend(np.arange(3.0), np.arange(4.0))

    def test_degenerate_times_fall_back_to_mean(self):
        x = remove_linear_trend(np.zeros(5), np.arange(5.0))
        assert np.mean(x) == pytest.approx(0.0)
