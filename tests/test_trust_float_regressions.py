"""Regression tests for the float-equality fixes in ``repro.trust``.

Each of these sites compared an accumulated float with ``== 0.0``
(flagged by lint rule NH01); the fixes replace exact equality with a
tolerance or an inequality covering the degenerate case.  These tests
pin the degenerate behavior each guard protects.
"""

from __future__ import annotations

import math

from repro.trust import (
    BehaviourProfile,
    RecommendationGraph,
    TrustManager,
    TrustManagerConfig,
    asymptotic_trust,
    entropy_trust_inverse,
    multipath,
)


class TestEntropyTrustInverse:
    def test_zero_is_half(self):
        assert entropy_trust_inverse(0.0) == 0.5

    def test_sub_tolerance_trust_is_half(self):
        # Entropy trust within the bisection tolerance of zero carries
        # no information; the answer is exactly 0.5, not a value the
        # bisection happens to land on.
        assert entropy_trust_inverse(5e-11) == 0.5
        assert entropy_trust_inverse(-5e-11) == 0.5

    def test_informative_trust_still_inverts(self):
        p = entropy_trust_inverse(0.5)
        assert 0.5 < p < 1.0
        assert math.isclose(
            entropy_trust_inverse(-0.5), 1.0 - p, rel_tol=0, abs_tol=1e-8
        )


class TestMultipath:
    def test_no_informative_path_is_zero(self):
        # Every recommendation trust clips to zero weight; the fused
        # value must be exactly 0 (no information), never a 0/0.
        assert multipath([-0.4, -0.9, 0.0], [0.8, 0.2, 0.5]) == 0.0

    def test_weighted_paths_average(self):
        fused = multipath([0.5, 0.25], [0.8, 0.4])
        assert math.isclose(fused, (0.5 * 0.8 + 0.25 * 0.4) / 0.75)


class TestAsymptoticTrust:
    def test_inactive_profile_has_no_information(self):
        # A rater that never rates accumulates no evidence: asymptotic
        # trust is the uninformative prior 0.5 even without forgetting.
        idle = BehaviourProfile(honest_rate=0.0)
        assert asymptotic_trust(idle, forgetting_factor=1.0) == 0.5

    def test_active_profile_converges_to_rate_ratio(self):
        profile = BehaviourProfile(honest_rate=3.0, unfair_rate=1.0,
                                   filter_rate=0.5)
        expected = profile.success_increment / (
            profile.success_increment + profile.failure_increment
        )
        assert math.isclose(asymptotic_trust(profile, 1.0), expected)


class TestBlendedTrust:
    def test_zero_weight_ignores_the_graph(self):
        # With no indirect weight, blending must return the direct
        # trust untouched -- even when the graph knows nothing about
        # the rater (no division by an empty path set).
        manager = TrustManager(TrustManagerConfig(indirect_weight=0.0))
        direct = manager.trust(42)
        assert manager.blended_trust(42, RecommendationGraph()) == direct

    def test_positive_weight_blends(self):
        manager = TrustManager(TrustManagerConfig(indirect_weight=0.5))
        graph = manager.build_recommendation_graph()
        blended = manager.blended_trust(7, graph)
        assert 0.0 <= blended <= 1.0
