"""Scenario: bootstrapping trust in newcomers through recommendations.

The trust manager's indirect-trust path (Fig. 1's Recommendation Buffer)
lets the system form an opinion about raters it has never observed, by
propagating through raters it *has*.  This example builds a small web:

* three veterans the system trusts from direct history,
* newcomers vouched for by veterans,
* a collusion ring whose members vouch only for each other,
* a newcomer slandered by one veteran but vouched by two others.

and prints each party's indirect trust.  Propagation follows the Sun et
al. entropy-trust rules: concatenation multiplies trust along a path
(so a chain of lukewarm vouches decays), and multipath fusion weights
parallel paths by the recommender's own trustworthiness.

Run:  python examples/recommendation_web.py
"""

from __future__ import annotations

from repro.trust import RecommendationGraph, entropy_trust_inverse


VETERANS = {"alice": 10, "bob": 11, "carol": 12}
NEWCOMERS = {"dave": 20, "erin": 21, "frank": 22}
RING = {"mallory": 30, "mal2": 31, "mal3": 32}


def main() -> None:
    graph = RecommendationGraph(max_path_length=3)

    # The system's direct recommendation trust in the veterans, earned
    # through months of accurate ratings (beta trust values).
    graph.set_system_trust(VETERANS["alice"], 0.95)
    graph.set_system_trust(VETERANS["bob"], 0.90)
    graph.set_system_trust(VETERANS["carol"], 0.70)

    # Veterans vouch for newcomers they have transacted with.
    graph.add_recommendation(VETERANS["alice"], NEWCOMERS["dave"], 0.9)
    graph.add_recommendation(VETERANS["bob"], NEWCOMERS["dave"], 0.85)
    graph.add_recommendation(VETERANS["carol"], NEWCOMERS["erin"], 0.8)

    # Frank divides opinion: carol distrusts him, alice and bob vouch.
    graph.add_recommendation(VETERANS["carol"], NEWCOMERS["frank"], 0.2)
    graph.add_recommendation(VETERANS["alice"], NEWCOMERS["frank"], 0.85)
    graph.add_recommendation(VETERANS["bob"], NEWCOMERS["frank"], 0.8)

    # The collusion ring vouches enthusiastically -- for itself.  No
    # trusted path reaches them, so their mutual praise is worthless.
    graph.add_recommendation(RING["mallory"], RING["mal2"], 1.0)
    graph.add_recommendation(RING["mal2"], RING["mal3"], 1.0)
    graph.add_recommendation(RING["mal3"], RING["mallory"], 1.0)

    print("indirect trust (entropy scale: -1 distrust, 0 unknown, +1 trust)")
    print("and the equivalent behaviour probability:\n")
    for name, rater_id in {**NEWCOMERS, **RING}.items():
        trust = graph.indirect_trust(rater_id)
        probability = entropy_trust_inverse(trust)
        bar = "#" * int(max(0.0, trust) * 30)
        print(f"  {name:<8} trust {trust:+.3f}  p(good) {probability:.2f}  {bar}")

    print(
        "\nDave (vouched by two strong veterans) lands highest; Erin's single"
        "\nlukewarm vouch through Carol decays via concatenation; Frank's"
        "\nconflicting reports fuse to a positive-but-hedged value; the"
        "\ncollusion ring's self-vouching yields exactly zero information."
    )


if __name__ == "__main__":
    main()
