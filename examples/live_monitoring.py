"""Scenario: live campaign monitoring on a rating firehose.

A rating service wants an alarm *while* a campaign is running, not in
next month's batch job.  `OnlineARDetector` keeps a sliding buffer per
object, refits the AR model every few arrivals, and raises alarms with
bounded latency -- this example replays the illustrative trace as a
live stream, prints the alarm timeline, and measures how long after
the campaign's onset the first alarm fired.

Run:  python examples/live_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import IllustrativeConfig, OnlineARDetector, generate_illustrative


def main() -> None:
    config = IllustrativeConfig()
    trace = generate_illustrative(config, np.random.default_rng(seed=3))
    print(
        f"replaying {len(trace.attacked)} ratings as a live stream "
        f"(hidden campaign: days {config.attack_start:.0f}-{config.attack_end:.0f})\n"
    )

    detector = OnlineARDetector(
        window_size=50,
        stride=5,        # evaluate every 5 arrivals
        threshold=0.10,
    )

    first_alarm = None
    day_cursor = 0
    for rating in trace.attacked:
        verdict = detector.observe(rating)
        # Narrate day boundaries sparsely.
        if int(rating.time) >= day_cursor + 10:
            day_cursor = int(rating.time) // 10 * 10
            state = "ALARM ACTIVE" if detector.alarms and (
                detector.alarms[-1].window.end_time > rating.time - 5
            ) else "quiet"
            print(f"  day {day_cursor:3d}: {detector.n_seen:4d} ratings seen, {state}")
        if verdict is not None and verdict.suspicious and first_alarm is None:
            first_alarm = verdict
            print(
                f"  >>> first alarm at day {rating.time:.1f} "
                f"(model error {verdict.statistic:.3f}, window "
                f"days {verdict.window.start_time:.1f}-{verdict.window.end_time:.1f})"
            )

    print(f"\ntotal alarms: {len(detector.alarms)}")
    if first_alarm is not None:
        latency = first_alarm.window.end_time - config.attack_start
        print(
            f"first-alarm latency: {latency:.1f} days after campaign onset "
            f"(the batch pipeline would wait for the interval close)"
        )
        suspicion = detector.suspicious_raters()
        unfair = {r.rater_id for r in trace.attacked if r.unfair}
        caught = len(set(suspicion) & unfair)
        print(
            f"raters charged so far: {len(suspicion)} "
            f"({caught} of {len(unfair)} true colluders among them)"
        )
    else:
        print("no alarm on this seed -- rerun with another seed")


if __name__ == "__main__":
    main()
