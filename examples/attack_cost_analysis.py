"""Scenario: what does it cost to manipulate a rating, and what gets caught?

Walks the paper's Section II-B economics (equation 1): how many
colluders an owner must hire to push an aggregate past a target, as a
function of how extreme their ratings are -- then shows the detection
flip side by running each strategy through the AR detector and the
classic quantile filter.

Run:  python examples/attack_cost_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ARModelErrorDetector,
    BetaQuantileFilter,
    IllustrativeConfig,
    generate_illustrative,
    required_colluders,
)
from repro.evaluation import rating_detection
from repro.signal.windows import CountWindower
from dataclasses import replace


def cost_table() -> None:
    """Equation (1): colluders needed vs. the rating value they submit."""
    n_honest, quality, target = 30, 0.6, 0.7
    print(
        f"goal: push a product with true quality {quality} past {target} "
        f"against {n_honest} honest ratings\n"
    )
    print("  colluder rating | colluders needed | note")
    for value in (1.0, 0.9, 0.8, 0.75, 0.72):
        needed = required_colluders(n_honest, quality, target, value)
        note = ""
        if value == 1.0:
            note = "strategy 1: cheap but value-outliers"
        elif value == 0.8:
            note = "strategy 2: expensive but hides in the crowd"
        elif needed == float("inf"):
            note = "cannot reach the target at any size"
        needed_str = "impossible" if needed == float("inf") else f"> {needed:.0f}"
        print(f"  {value:15.2f} | {needed_str:>16} | {note}")


def detection_table() -> None:
    """Who catches which strategy (one seed; see benches for batches)."""
    detector = ARModelErrorDetector(
        order=4, threshold=0.10, windower=CountWindower(size=50, step=10)
    )
    quantile_filter = BetaQuantileFilter(sensitivity=0.1)
    scenarios = {
        "strategy 1 (extreme downgrade)": dict(
            bias_shift1=-0.4, bias_shift2=-0.5,
            recruit_power1=0.15, recruit_power2=0.3,
        ),
        "strategy 2 (moderate boost)": dict(bias_shift1=0.2, bias_shift2=0.15),
    }
    print("\n  scenario                        | AR detector | quantile filter")
    for name, overrides in scenarios.items():
        config = replace(IllustrativeConfig(), **overrides)
        detections_ar, detections_filter = [], []
        for seed in range(10):
            trace = generate_illustrative(config, np.random.default_rng(seed))
            ar = rating_detection(
                trace.attacked, detector.detect(trace.attacked).flagged_rating_ids
            )
            filt = rating_detection(
                trace.attacked,
                quantile_filter.filter(trace.attacked).removed_ids,
            )
            detections_ar.append(ar.detection_ratio)
            detections_filter.append(filt.detection_ratio)
        print(
            f"  {name:<31} | {np.mean(detections_ar):11.2f} | "
            f"{np.mean(detections_filter):15.2f}"
        )
    print(
        "\nThe two defenses are complementary: the quantile filter sees "
        "value outliers, so it clips the extreme strategy but lets the "
        "moderate one walk through; the AR detector keys on the temporal "
        "signature a high-volume campaign leaves, so it catches the "
        "moderate flood while a handful of extreme ratings barely move "
        "its window statistics."
    )


def main() -> None:
    cost_table()
    detection_table()


if __name__ == "__main__":
    main()
