"""Scenario: screening a whole catalog for manipulated titles.

A streaming service has a catalog of movies with organic rating
traffic; one title's distributor has quietly bought ratings for a
launch window.  The auditor does not know which title (or whether any)
was touched.  This example generates a 12-title catalog, attacks one,
and ranks every title by its minimum windowed AR model error relative
to its own typical level -- the manipulated title should surface at the
top of the ranking.

Run:  python examples/catalog_screening.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ARModelErrorDetector,
    CollusionCampaign,
    FIVE_STAR,
    NetflixTraceConfig,
    estimate_trace_statistics,
    generate_netflix_trace,
    inject_campaign,
)
from repro.evaluation import sparkline
from repro.signal.windows import CountWindower

N_TITLES = 12
ATTACKED_TITLE = 7
ATTACK_START, ATTACK_END = 180.0, 240.0


def build_catalog(rng):
    """Generate the catalog; title ATTACKED_TITLE gets the campaign."""
    catalog = {}
    for title_id in range(N_TITLES):
        config = NetflixTraceConfig(
            n_days=500.0,
            peak_rate=float(rng.uniform(3.0, 9.0)),
            ramp_days=float(rng.uniform(30.0, 90.0)),
            half_life_days=float(rng.uniform(200.0, 500.0)),
            star_probabilities=tuple(
                (lambda p: p / p.sum())(rng.dirichlet(np.ones(5) * 8.0))
            ),
            product_id=title_id,
        )
        trace = generate_netflix_trace(config, rng)
        if title_id == ATTACKED_TITLE:
            stats = estimate_trace_statistics(trace)
            campaign = CollusionCampaign(
                start=ATTACK_START,
                end=ATTACK_END,
                type1_bias=0.2,
                type1_power=0.3,
                type2_bias=0.2,
                type2_variance=0.25 * stats.variance,
                type2_power=1.0,
            )
            trace = inject_campaign(trace, campaign, FIVE_STAR, rng)
        catalog[title_id] = trace
    return catalog


def suspicion_score(detector, trace) -> tuple:
    """(score, error series): relative depth of the deepest error dip."""
    _, errors = detector.error_series(trace)
    if errors.size < 4:
        return 0.0, errors
    typical = float(np.median(errors))
    deepest = float(np.min(errors))
    return (typical - deepest) / typical, errors


def main() -> None:
    rng = np.random.default_rng(seed=2)
    print(f"generating a {N_TITLES}-title catalog (one secretly manipulated)...")
    catalog = build_catalog(rng)

    detector = ARModelErrorDetector(
        order=4, threshold=0.05, windower=CountWindower(size=50, step=10)
    )
    ranking = []
    for title_id, trace in catalog.items():
        score, errors = suspicion_score(detector, trace)
        ranking.append((score, title_id, errors))
    ranking.sort(reverse=True)

    print("\nrank  title  dip score  model error over time")
    for rank, (score, title_id, errors) in enumerate(ranking, start=1):
        marker = "  <-- the manipulated title" if title_id == ATTACKED_TITLE else ""
        print(
            f"{rank:4d}  #{title_id:<4d}  {score:9.2f}  "
            f"{sparkline(errors)}{marker}"
        )

    top_score, top_title, _ = ranking[0]
    if top_title == ATTACKED_TITLE:
        runner_up = ranking[1][0]
        print(
            f"\nThe manipulated title tops the ranking with dip score "
            f"{top_score:.2f} vs {runner_up:.2f} for the cleanest runner-up."
        )
    else:
        print("\n(The attacked title did not rank first on this seed.)")


if __name__ == "__main__":
    main()
