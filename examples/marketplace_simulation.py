"""Scenario: a year-long product marketplace under monthly campaigns.

Reproduces the paper's Section IV world -- 800 raters, 60 products,
one dishonest product per month hiring potential-collaborative raters
for a 10-day campaign -- and runs the full trust-enhanced pipeline
(quantile filter -> AR detector -> Procedure 2 trust -> modified
weighted average).  Prints the trust trajectories, detection rates, and
the final aggregation comparison.

Run:  python examples/marketplace_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro import MarketplaceConfig, PipelineConfig, generate_marketplace, run_marketplace
from repro.aggregation import (
    BetaFunctionAggregator,
    ModifiedWeightedAverage,
    SimpleAverage,
)
from repro.ratings.models import RaterClass


def main() -> None:
    config = MarketplaceConfig(a1=6.0, a2=0.5)
    print(
        f"generating {config.n_months} months, {config.n_raters} raters, "
        f"{config.n_products} products..."
    )
    world = generate_marketplace(config, np.random.default_rng(seed=3))
    print(f"  {world.store.n_ratings} ratings generated")
    unfair = len(world.store.all_ratings().unfair_only())
    print(f"  {unfair} are collaborative (ground truth)")

    print("\nrunning the trust-enhanced pipeline month by month...")
    run = run_marketplace(world, PipelineConfig())

    print("\nmean trust by rater class (one column per month):")
    for rater_class, series in sorted(
        run.mean_trust_by_class().items(), key=lambda kv: kv[0].value
    ):
        row = " ".join(f"{v:.2f}" for v in series)
        print(f"  {rater_class.value:<25} {row}")

    for month in (5, 11):
        stats = run.rater_detection_at(month)
        false_alarms = {
            cls.value: round(rate, 3)
            for cls, rate in stats.false_alarm_rates.items()
        }
        print(
            f"\nmonth {month + 1}: {100 * stats.detection_rate:.0f}% of "
            f"collaborative raters detected (trust < 0.5); "
            f"false alarms {false_alarms}"
        )

    print("\nfinal aggregates for the dishonest products:")
    schemes = {
        "simple average": SimpleAverage(),
        "beta aggregation": BetaFunctionAggregator(),
        "modified weighted avg": ModifiedWeightedAverage(),
    }
    table = run.aggregation_table(schemes)
    print("  product | quality | " + " | ".join(f"{n:>21}" for n in schemes))
    for pid in world.dishonest_product_ids:
        cells = " | ".join(f"{table[n].get(pid, float('nan')):21.3f}" for n in schemes)
        print(f"  {pid:7d} | {world.qualities[pid]:7.3f} | {cells}")

    deviations = {
        name: np.mean(
            [table[name][p] - world.qualities[p] for p in world.dishonest_product_ids]
        )
        for name in schemes
    }
    print("\nmean inflation over true quality (lower is better):")
    for name, dev in deviations.items():
        print(f"  {name:<22} {dev:+.3f}")


if __name__ == "__main__":
    main()
