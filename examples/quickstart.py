"""Quickstart: detect a collaborative rating campaign in 30 lines.

Generates the paper's illustrative scenario -- one product rated over
60 days with a hidden 14-day collusion campaign -- and runs the AR
model-error detector on it.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import ARModelErrorDetector, IllustrativeConfig, generate_illustrative
from repro.signal.windows import CountWindower


def main() -> None:
    rng = np.random.default_rng(seed=3)

    # One product, Poisson rating arrivals, quality ramping 0.7 -> 0.8.
    # Between days 30 and 44 the owner recruits collaborative raters
    # whose ratings sit only ~0.15 above the honest consensus.
    config = IllustrativeConfig()
    trace = generate_illustrative(config, rng)
    print(f"ratings: {len(trace.attacked)} ({trace.n_unfair} secretly unfair)")

    # Fit an AR model to each 50-rating window; windows whose normalized
    # model error drops below the threshold are suspicious intervals.
    detector = ARModelErrorDetector(
        order=4,
        threshold=0.10,
        windower=CountWindower(size=50, step=10),
    )
    report = detector.detect(trace.attacked)

    print("\nwindow  days          model error  suspicious")
    for verdict in report.verdicts:
        w = verdict.window
        marker = "  <-- SUSPICIOUS" if verdict.suspicious else ""
        print(
            f"{w.index:4d}    {w.start_time:5.1f}-{w.end_time:5.1f}  "
            f"{verdict.statistic:10.3f}{marker}"
        )

    flagged = report.flagged_rating_ids
    unfair = {r.rating_id for r in trace.attacked if r.unfair}
    caught = len(flagged & unfair)
    print(
        f"\ntrue attack interval: days [{config.attack_start}, {config.attack_end})"
        f"\nratings in suspicious windows: {len(flagged)}"
        f"\nunfair ratings caught: {caught}/{len(unfair)}"
    )


if __name__ == "__main__":
    main()
