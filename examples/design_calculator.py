"""Scenario: sizing a trust system before deploying it.

Before running week-long simulations, an operator wants quick answers:
how fast will honest raters earn useful trust, how long until a
colluder crosses the detection threshold, and does a pre-built honest
history shield a turncoat?  The analytical trust-dynamics model
(``repro.trust.dynamics``) answers all three in closed form, and the
marketplace simulation agrees with it (see tests/test_trust_dynamics).

Run:  python examples/design_calculator.py
"""

from __future__ import annotations

from repro.evaluation import line_chart
from repro.trust import (
    BehaviourProfile,
    asymptotic_trust,
    detection_interval,
    expected_trust_trajectory,
)

# Per-month behaviour, in the marketplace's units (see DESIGN.md §5):
# an honest rater files ~2.6 ratings/month of which the filter trims a
# few percent; a collaborator files ~0.6 campaign ratings that land in
# flagged windows three times out of four.
HONEST = BehaviourProfile(honest_rate=2.6, filter_rate=0.04)
COLLUDER = BehaviourProfile(
    honest_rate=0.1, unfair_rate=0.7, flag_rate=0.8, level=1.0
)
MONTHS = 12


def show(title: str, profile: BehaviourProfile, **kwargs) -> None:
    trajectory = expected_trust_trajectory(profile, MONTHS, **kwargs)
    asymptote = asymptotic_trust(
        profile, kwargs.get("forgetting_factor", 1.0)
    )
    crossing = detection_interval(profile, **kwargs)
    when = f"month {crossing}" if crossing else "never"
    print(f"{title}")
    print(f"  expected trust: {' '.join(f'{v:.2f}' for v in trajectory)}")
    print(f"  asymptote {asymptote:.2f}; crosses the 0.5 threshold: {when}\n")


def main() -> None:
    print("=== trust-system design calculator ===\n")
    show("honest rater:", HONEST)
    show("collaborator (fresh identity):", COLLUDER)
    show(
        "turncoat (20 honest ratings of capital, then campaigns), "
        "no forgetting:",
        COLLUDER,
        initial_successes=20.0,
    )
    show(
        "same turncoat with forgetting factor 0.7:",
        COLLUDER,
        initial_successes=20.0,
        forgetting_factor=0.7,
    )

    print("trajectories at a glance:")
    chart = line_chart(
        {
            "honest": expected_trust_trajectory(HONEST, MONTHS),
            "colluder": expected_trust_trajectory(COLLUDER, MONTHS),
            "turncoat": expected_trust_trajectory(
                COLLUDER, MONTHS, initial_successes=20.0
            ),
            "turncoat+forget": expected_trust_trajectory(
                COLLUDER, MONTHS, initial_successes=20.0, forgetting_factor=0.7
            ),
        },
        height=10,
        y_min=0.0,
        y_max=1.0,
    )
    print(chart)
    print(
        "\nReadings: the fresh colluder is caught within a few months; the"
        "\nturncoat's capital shields it past the year without forgetting,"
        "\nand forgetting factor 0.7 pulls the crossing back inside it."
    )


if __name__ == "__main__":
    main()
