"""Scenario: auditing a real-shaped movie rating trace for manipulation.

Generates the synthetic Netflix-like "Dinosaur Planet" trace (integer
stars, release ramp, weekend bursts), injects the paper's collaborative
campaign between days 212 and 272, and shows how the AR model error
exposes the campaign even on coarse, bursty, real-shaped data.

Run:  python examples/netflix_injection.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DINOSAUR_PLANET,
    CollusionCampaign,
    estimate_trace_statistics,
    generate_netflix_trace,
    inject_campaign,
    ARModelErrorDetector,
    FIVE_STAR,
)
from repro.evaluation import sparkline
from repro.signal.windows import CountWindower


ATTACK_START, ATTACK_END = 212.0, 272.0


def main() -> None:
    rng = np.random.default_rng(seed=0)
    trace = generate_netflix_trace(DINOSAUR_PLANET, rng)
    stats = estimate_trace_statistics(trace)
    print(
        f"movie trace: {len(trace)} ratings over "
        f"{stats.span[1] - stats.span[0]:.0f} days, "
        f"mean {stats.mean:.2f}, ~{stats.arrival_rate:.1f} ratings/day"
    )

    # The paper's Fig. 5 recipe: shift half the in-window regulars by
    # +0.2 and recruit outsiders at the trace's own arrival rate with
    # badVar = 0.25 * the trace's variance.
    campaign = CollusionCampaign(
        start=ATTACK_START,
        end=ATTACK_END,
        type1_bias=0.2,
        type1_power=0.5,
        type2_bias=0.25,
        type2_variance=0.25 * stats.variance,
        type2_power=1.0,
    )
    attacked = inject_campaign(trace, campaign, FIVE_STAR, rng)
    print(
        f"injected campaign days [{ATTACK_START:.0f}, {ATTACK_END:.0f}): "
        f"{len(attacked) - len(trace)} recruited ratings plus influenced regulars"
    )

    detector = ARModelErrorDetector(
        order=4, threshold=0.05, windower=CountWindower(size=50, step=10)
    )
    t_original, e_original = detector.error_series(trace)
    t_attacked, e_attacked = detector.error_series(attacked)

    lo = min(e_original.min(), e_attacked.min())
    hi = max(e_original.max(), e_attacked.max())
    print("\nAR model error over time (low = predictable = suspicious):")
    print(f"  original: {sparkline(e_original, lo, hi)}")
    print(f"  attacked: {sparkline(e_attacked, lo, hi)}")

    in_attack = (t_attacked >= ATTACK_START) & (t_attacked <= ATTACK_END)
    print(
        f"\n  original mean error : {e_original.mean():.3f}"
        f"\n  attacked, in-window : {e_attacked[in_attack].min():.3f} (minimum)"
        f"\n  attacked, elsewhere : {e_attacked[~in_attack].mean():.3f}"
    )
    drop = e_original.mean() / e_attacked[in_attack].min()
    print(f"  => the campaign window drops the model error {drop:.1f}x")


if __name__ == "__main__":
    main()
