"""Scenario: wiring your own rating service into the Fig. 1 pipeline.

Shows the library as a downstream user would adopt it: register your
own products and raters, stream ratings in as they arrive, close
weekly trust-update intervals, and query trust-aware aggregates --
here for a small bookstore where one title's publisher runs a review
campaign in week three.

Run:  python examples/custom_rating_system.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ARModelErrorDetector,
    BetaQuantileFilter,
    ELEVEN_LEVEL,
    Product,
    RaterClass,
    RaterProfile,
    Rating,
    TrustEnhancedRatingSystem,
    TrustManagerConfig,
)
from repro.aggregation import ModifiedWeightedAverage, SimpleAverage
from repro.ratings.models import fresh_rating_id
from repro.signal.windows import TimeWindower

RNG = np.random.default_rng(seed=1)

BOOKS = {
    0: ("The Honest Novel", 0.75),
    1: ("Astroturf Cookbook", 0.45),  # its publisher buys reviews
}
CAMPAIGN = dict(book=1, start=14.0, end=21.0, bias=0.2)


def build_system() -> TrustEnhancedRatingSystem:
    """Assemble the pipeline with weekly AR analysis windows."""
    system = TrustEnhancedRatingSystem(
        rating_filter=BetaQuantileFilter(sensitivity=0.05),
        detector=ARModelErrorDetector(
            order=4,
            threshold=0.14,
            level_rule="literal",
            windower=TimeWindower(length=7.0, step=3.5),
        ),
        aggregator=ModifiedWeightedAverage(),
        trust_config=TrustManagerConfig(badness_weight=1.0),
    )
    for book_id, (_title, quality) in BOOKS.items():
        system.register_product(Product(product_id=book_id, quality=quality))
    return system


def simulate_reviews(system: TrustEnhancedRatingSystem, n_days: int = 28):
    """Stream four weeks of reviews; week 3 hides the campaign."""
    next_reader = 0
    for day in range(n_days):
        for book_id, (_title, quality) in BOOKS.items():
            for _ in range(RNG.poisson(8)):
                reader = next_reader
                next_reader += 1
                in_campaign = (
                    book_id == CAMPAIGN["book"]
                    and CAMPAIGN["start"] <= day < CAMPAIGN["end"]
                    and RNG.uniform() < 0.5
                )
                if in_campaign:
                    value = RNG.normal(quality + CAMPAIGN["bias"], 0.1)
                    rater_class = RaterClass.TYPE2_COLLABORATIVE
                else:
                    value = RNG.normal(quality, 0.4)
                    rater_class = RaterClass.RELIABLE
                system.register_rater(
                    RaterProfile(rater_id=reader, rater_class=rater_class)
                )
                system.ingest(
                    [
                        Rating(
                            rating_id=fresh_rating_id(),
                            rater_id=reader,
                            product_id=book_id,
                            value=ELEVEN_LEVEL.quantize(float(value)),
                            time=day + float(RNG.uniform()),
                            unfair=in_campaign,
                        )
                    ]
                )


def main() -> None:
    system = build_system()
    simulate_reviews(system)

    print("closing weekly trust-update intervals...")
    for report in system.run(0.0, 28.0, interval=7.0):
        flagged_books = [
            pid
            for pid, product_report in report.products.items()
            if product_report.suspicion_report.suspicious_verdicts
        ]
        flags = (
            f"suspicious activity on book(s) {flagged_books}"
            if flagged_books
            else "all quiet"
        )
        print(
            f"  week of day {report.start:4.0f}: {report.n_ratings:4d} reviews, "
            f"{report.n_filtered} filtered, {flags}"
        )

    print("\nfinal scores (true quality vs. naive vs. trust-aware):")
    simple, mwa = SimpleAverage(), ModifiedWeightedAverage()
    for book_id, (title, quality) in BOOKS.items():
        naive = system.aggregated_rating(book_id, simple)
        aware = system.aggregated_rating(book_id, mwa)
        print(
            f"  {title:<22} quality {quality:.2f} | "
            f"simple avg {naive:.2f} | trust-aware {aware:.2f}"
        )
    print(
        "\nThe campaign inflates the Astroturf Cookbook's naive average; "
        "the trust-aware aggregate discounts the flagged raters."
    )


if __name__ == "__main__":
    main()
