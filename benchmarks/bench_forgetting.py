"""Extension -- the forgetting scheme under a behaviour switch.

Fig. 1's Record Maintenance module, exercised: potential-collaborative
raters build honest trust capital for half a year, then start
campaigning.  Without forgetting the capital shields them; exponential
forgetting restores detection.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import forgetting

from benchmarks.conftest import emit, run_once


def test_forgetting_behaviour_switch(benchmark):
    result = run_once(benchmark, lambda: forgetting.run(seed=0, switch_month=6))
    emit(
        "Extension -- forgetting under a behaviour switch",
        forgetting.format_report(result),
    )
    no_forget = result.outcomes[1.0]
    strong_forget = result.outcomes[0.5]
    switch = result.switch_month

    # Before the switch nobody is (correctly) detected.
    for outcome in result.outcomes.values():
        assert np.all(outcome.detection_by_month[:switch] < 0.1)
    # Without forgetting the pre-built trust shields the colluders to
    # the end of the year; with factor 0.5 detection recovers strongly.
    assert no_forget.detection_by_month[-1] < 0.2
    assert strong_forget.detection_by_month[-1] > 0.6
    # Forgetting does not create false alarms.
    for outcome in result.outcomes.values():
        assert outcome.final_false_alarm <= 0.05
    # Monotone in the factor: more forgetting, faster recovery.
    assert (
        strong_forget.detection_by_month[-1]
        >= result.outcomes[0.8].detection_by_month[-1]
        >= no_forget.detection_by_month[-1]
    )
