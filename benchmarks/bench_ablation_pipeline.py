"""Ablation -- pipeline pieces: level rule and filter interaction.

Two DESIGN.md §7 choices exercised on a compact marketplace:

* **level rule** -- Procedure 1's printed ("literal", saturating)
  suspicion level versus the bounded re-reading.  The literal rule is
  what makes accumulated suspicion outpace a collaborator's honest
  evidence; the bounded rule's margin-proportional levels are too small
  at realistic operating points.
* **filter interaction** -- the AR detector with and without the
  quantile pre-filter (feature extraction I).  The filter is not what
  catches the moderate-bias campaign; detection barely moves without it.
"""

from __future__ import annotations

import numpy as np

from repro.filters.base import NullFilter
from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace
from repro.simulation.pipeline import PipelineConfig, run_marketplace

from benchmarks.conftest import emit, run_once

#: Compact world: full per-product rating volume, smaller population.
WORLD_CONFIG = MarketplaceConfig(
    n_reliable=120, n_careless=60, n_pc=60, n_months=6, p_rate=0.04
)


def run_detection(pipeline, seed=5):
    world = generate_marketplace(WORLD_CONFIG, np.random.default_rng(seed))
    result = run_marketplace(world, pipeline)
    stats = result.rater_detection_at(WORLD_CONFIG.n_months - 1)
    return {
        "detection": stats.detection_rate,
        "false_alarm": max(stats.false_alarm_rates.values(), default=0.0),
    }


def test_ablation_level_rule(benchmark):
    def sweep():
        return {
            rule: run_detection(PipelineConfig(ar_level_rule=rule))
            for rule in ("literal", "bounded")
        }

    outcomes = run_once(benchmark, sweep)
    emit(
        "Ablation -- Procedure 1 level rule",
        "\n".join(
            f"  {rule:<8}: detection {o['detection']:.2f}, "
            f"false alarm {o['false_alarm']:.3f}"
            for rule, o in outcomes.items()
        ),
    )
    # The saturating literal rule detects collaborators; the bounded
    # rule's tiny margin-proportional levels under-penalize them.
    assert outcomes["literal"]["detection"] > outcomes["bounded"]["detection"]
    assert outcomes["literal"]["false_alarm"] <= 0.1


def test_ablation_filter_interaction(benchmark):
    def sweep():
        with_filter = run_detection(PipelineConfig())
        # Swap in a pass-through filter by rebuilding the system.
        pipeline = PipelineConfig()
        world = generate_marketplace(WORLD_CONFIG, np.random.default_rng(5))
        system = pipeline.build_system()
        system.rating_filter = NullFilter()
        from repro.simulation.pipeline import MarketplaceRun

        run = MarketplaceRun(world=world, system=system)
        for pid in world.store.product_ids:
            system.register_product(world.store.product(pid))
        for rid in world.store.rater_ids:
            system.register_rater(world.store.rater(rid))
        all_ratings = world.store.all_ratings()
        for month in range(WORLD_CONFIG.n_months):
            start = float(month * WORLD_CONFIG.days_per_month)
            end = start + WORLD_CONFIG.days_per_month
            system.ingest(all_ratings.between(start, end))
            report = system.process_interval(start, end)
            run.monthly_reports.append(report)
            run.monthly_trust.append(dict(report.trust_after))
        stats = run.rater_detection_at(WORLD_CONFIG.n_months - 1)
        without_filter = {
            "detection": stats.detection_rate,
            "false_alarm": max(stats.false_alarm_rates.values(), default=0.0),
        }
        return {"with_filter": with_filter, "without_filter": without_filter}

    outcomes = run_once(benchmark, sweep)
    emit(
        "Ablation -- quantile pre-filter on/off",
        "\n".join(
            f"  {name:<15}: detection {o['detection']:.2f}, "
            f"false alarm {o['false_alarm']:.3f}"
            for name, o in outcomes.items()
        ),
    )
    # The AR detector, not the filter, carries moderate-bias detection.
    assert outcomes["without_filter"]["detection"] > 0.5
    gap = abs(
        outcomes["with_filter"]["detection"]
        - outcomes["without_filter"]["detection"]
    )
    assert gap < 0.25
