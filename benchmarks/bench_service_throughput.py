"""Service ingest throughput vs. shard count and batch size.

The serving engine's two scaling knobs are sharding (lock domains) and
trust-flush batching (AR/Procedure-2 amortization).  This bench pushes
the same synthetic multi-product stream through the engine under a
grid of both and reports ratings/sec, plus one WAL-enabled
configuration to price durability.  Concurrent cases drive one writer
thread per shard (each thread owns the products of its shard, the
intended deployment shape).

Also runs standalone without pytest::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import math
import threading
import time

import numpy as np
import pytest

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # standalone `python benchmarks/bench_...py`
    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}")
from repro.ratings.models import Rating
from repro.service import RatingEngine, ServiceConfig

N_RATINGS = 4000
N_PRODUCTS = 32
N_RATERS = 200


def build_stream(n=N_RATINGS, n_products=N_PRODUCTS, seed=0):
    rng = np.random.default_rng(seed)
    ratings = []
    for i in range(n):
        value = np.clip(0.6 + 0.2 * math.sin(i / 9.0) + rng.normal(0, 0.1), 0, 1)
        ratings.append(
            Rating(
                rating_id=i,
                rater_id=int(rng.integers(0, N_RATERS)),
                product_id=i % n_products,
                value=round(float(value), 3),
                time=float(i),
            )
        )
    return ratings


def make_config(n_shards, batch, wal_dir=None):
    return ServiceConfig(
        n_shards=n_shards,
        batch_max_ratings=batch,
        detector_window=32,
        detector_stride=8,
        wal_dir=None if wal_dir is None else str(wal_dir),
        wal_fsync_every=256,
    )


def ingest_concurrent(engine, stream):
    """One writer thread per shard, each feeding its shard's products."""
    by_shard = [[] for _ in range(engine.n_shards)]
    for rating in stream:
        by_shard[hash(rating.product_id) % engine.n_shards].append(rating)

    def worker(part):
        engine.submit_many(part)

    threads = [threading.Thread(target=worker, args=(part,)) for part in by_shard]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    engine.flush()


@pytest.fixture(scope="module")
def stream():
    return build_stream()


@pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
def test_ingest_throughput_vs_shards(benchmark, stream, n_shards):
    def run():
        engine = RatingEngine(make_config(n_shards, batch=64))
        ingest_concurrent(engine, stream)
        return engine

    engine = benchmark.pedantic(run, rounds=3, iterations=1)
    assert engine.n_accepted == len(stream)
    rate = len(stream) / benchmark.stats.stats.mean
    emit(
        f"service ingest throughput -- {n_shards} shard(s), batch 64",
        f"{rate:,.0f} ratings/sec over {len(stream)} ratings "
        f"({engine.snapshot_stats()['windows_flagged']} windows flagged)",
    )


@pytest.mark.parametrize("batch", [8, 64, 512])
def test_ingest_throughput_vs_batch(benchmark, stream, batch):
    def run():
        engine = RatingEngine(make_config(4, batch=batch))
        ingest_concurrent(engine, stream)
        return engine

    engine = benchmark.pedantic(run, rounds=3, iterations=1)
    rate = len(stream) / benchmark.stats.stats.mean
    emit(
        f"service ingest throughput -- 4 shards, batch {batch}",
        f"{rate:,.0f} ratings/sec "
        f"({engine.snapshot_stats()['trust_updates']} trust updates)",
    )


def test_ingest_throughput_with_wal(benchmark, stream, tmp_path):
    def run():
        import shutil

        wal_dir = tmp_path / "wal"
        if wal_dir.exists():
            shutil.rmtree(wal_dir)
        engine = RatingEngine(make_config(4, batch=64, wal_dir=wal_dir))
        ingest_concurrent(engine, stream)
        engine.close()
        return engine

    engine = benchmark.pedantic(run, rounds=3, iterations=1)
    assert engine.n_accepted == len(stream)
    rate = len(stream) / benchmark.stats.stats.mean
    emit(
        "service ingest throughput -- 4 shards, batch 64, WAL on",
        f"{rate:,.0f} ratings/sec with write-ahead logging (fsync every 256)",
    )


def main() -> None:
    """Standalone report: ratings/sec over the shard/batch grid."""
    stream = build_stream()
    rows = ["shards  batch  wal  ratings/sec"]
    for n_shards in (1, 2, 4, 8):
        engine = RatingEngine(make_config(n_shards, batch=64))
        start = time.perf_counter()
        ingest_concurrent(engine, stream)
        rate = len(stream) / (time.perf_counter() - start)
        rows.append(f"{n_shards:>6}  {64:>5}  off  {rate:>11,.0f}")
    for batch in (8, 512):
        engine = RatingEngine(make_config(4, batch=batch))
        start = time.perf_counter()
        ingest_concurrent(engine, stream)
        rate = len(stream) / (time.perf_counter() - start)
        rows.append(f"{4:>6}  {batch:>5}  off  {rate:>11,.0f}")
    import tempfile

    with tempfile.TemporaryDirectory() as wal_dir:
        engine = RatingEngine(make_config(4, batch=64, wal_dir=wal_dir))
        start = time.perf_counter()
        ingest_concurrent(engine, stream)
        engine.close()
        rate = len(stream) / (time.perf_counter() - start)
        rows.append(f"{4:>6}  {64:>5}   on  {rate:>11,.0f}")
    emit(f"service ingest throughput ({len(stream)} ratings)", "\n".join(rows))


if __name__ == "__main__":
    main()
