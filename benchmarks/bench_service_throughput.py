"""Service ingest throughput vs. shard count, batch size, and workers.

The serving engine's two in-process scaling knobs are sharding (lock
domains) and trust-flush batching (AR/Procedure-2 amortization).  This
bench pushes the same synthetic multi-product stream through the
engine under a grid of both and reports ratings/sec, plus one
WAL-enabled configuration to price durability.  Concurrent cases drive
one writer thread per shard (each thread owns the products of its
shard, the intended deployment shape).

``--workers`` adds the cluster section: a burst of ratings through a
:class:`~repro.service.cluster.ClusterCoordinator` at each requested
worker-process count.  The measured quantity is **ingest (ack)
throughput** -- the rate at which submits return, each one durably
appended to the coordinator WAL and queued to its owning worker --
which is what an HTTP client of the async tier experiences.  Workers
run a durable-apply configuration (fsync every accepted rating), and
each worker's queue is bounded, so a burst larger than one worker's
queue throttles to that worker's durable apply rate while more
workers both multiply the admission credit and drain it in parallel.
The end-to-end **applied** rate (burst fully flushed through trust
updates) is reported next to the ack rate in every row.
``--min-scaling`` turns the ack-throughput ratio between the largest
and smallest worker counts into a CI floor -- enforced only where
``os.cpu_count()`` can actually host that many workers in parallel;
on a single-core box every process time-slices one CPU, the ratio is
pinned near 1.0 by the scheduler, and the floor degrades to a note
(the artifact still records the measured number plus ``cpu_count``).

Also runs standalone without pytest::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py \\
        --workers 1,2,4 --json BENCH_service_scaling.json --min-scaling 2.5
"""

from __future__ import annotations

import argparse
import json
import math
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np
import pytest

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # standalone `python benchmarks/bench_...py`
    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}")
from repro.ratings.models import Rating
from repro.service import RatingEngine, ServiceConfig

N_RATINGS = 4000
N_PRODUCTS = 32
N_RATERS = 200


def build_stream(n=N_RATINGS, n_products=N_PRODUCTS, seed=0):
    rng = np.random.default_rng(seed)
    ratings = []
    for i in range(n):
        value = np.clip(0.6 + 0.2 * math.sin(i / 9.0) + rng.normal(0, 0.1), 0, 1)
        ratings.append(
            Rating(
                rating_id=i,
                rater_id=int(rng.integers(0, N_RATERS)),
                product_id=i % n_products,
                value=round(float(value), 3),
                time=float(i),
            )
        )
    return ratings


def make_config(n_shards, batch, wal_dir=None):
    return ServiceConfig(
        n_shards=n_shards,
        batch_max_ratings=batch,
        detector_window=32,
        detector_stride=8,
        wal_dir=None if wal_dir is None else str(wal_dir),
        wal_fsync_every=256,
    )


def ingest_concurrent(engine, stream):
    """One writer thread per shard, each feeding its shard's products."""
    by_shard = [[] for _ in range(engine.n_shards)]
    for rating in stream:
        by_shard[hash(rating.product_id) % engine.n_shards].append(rating)

    def worker(part):
        engine.submit_many(part)

    threads = [threading.Thread(target=worker, args=(part,)) for part in by_shard]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    engine.flush()


@pytest.fixture(scope="module")
def stream():
    return build_stream()


@pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
def test_ingest_throughput_vs_shards(benchmark, stream, n_shards):
    def run():
        engine = RatingEngine(make_config(n_shards, batch=64))
        ingest_concurrent(engine, stream)
        return engine

    engine = benchmark.pedantic(run, rounds=3, iterations=1)
    assert engine.n_accepted == len(stream)
    rate = len(stream) / benchmark.stats.stats.mean
    emit(
        f"service ingest throughput -- {n_shards} shard(s), batch 64",
        f"{rate:,.0f} ratings/sec over {len(stream)} ratings "
        f"({engine.snapshot_stats()['windows_flagged']} windows flagged)",
    )


@pytest.mark.parametrize("batch", [8, 64, 512])
def test_ingest_throughput_vs_batch(benchmark, stream, batch):
    def run():
        engine = RatingEngine(make_config(4, batch=batch))
        ingest_concurrent(engine, stream)
        return engine

    engine = benchmark.pedantic(run, rounds=3, iterations=1)
    rate = len(stream) / benchmark.stats.stats.mean
    emit(
        f"service ingest throughput -- 4 shards, batch {batch}",
        f"{rate:,.0f} ratings/sec "
        f"({engine.snapshot_stats()['trust_updates']} trust updates)",
    )


def test_ingest_throughput_with_wal(benchmark, stream, tmp_path):
    def run():
        import shutil

        wal_dir = tmp_path / "wal"
        if wal_dir.exists():
            shutil.rmtree(wal_dir)
        engine = RatingEngine(make_config(4, batch=64, wal_dir=wal_dir))
        ingest_concurrent(engine, stream)
        engine.close()
        return engine

    engine = benchmark.pedantic(run, rounds=3, iterations=1)
    assert engine.n_accepted == len(stream)
    rate = len(stream) / benchmark.stats.stats.mean
    emit(
        "service ingest throughput -- 4 shards, batch 64, WAL on",
        f"{rate:,.0f} ratings/sec with write-ahead logging (fsync every 256)",
    )


def shard_grid_report() -> None:
    """Standalone report: ratings/sec over the shard/batch grid."""
    stream = build_stream()
    rows = ["shards  batch  wal  ratings/sec"]
    for n_shards in (1, 2, 4, 8):
        engine = RatingEngine(make_config(n_shards, batch=64))
        start = time.perf_counter()
        ingest_concurrent(engine, stream)
        rate = len(stream) / (time.perf_counter() - start)
        rows.append(f"{n_shards:>6}  {64:>5}  off  {rate:>11,.0f}")
    for batch in (8, 512):
        engine = RatingEngine(make_config(4, batch=batch))
        start = time.perf_counter()
        ingest_concurrent(engine, stream)
        rate = len(stream) / (time.perf_counter() - start)
        rows.append(f"{4:>6}  {batch:>5}  off  {rate:>11,.0f}")
    with tempfile.TemporaryDirectory() as wal_dir:
        engine = RatingEngine(make_config(4, batch=64, wal_dir=wal_dir))
        start = time.perf_counter()
        ingest_concurrent(engine, stream)
        engine.close()
        rate = len(stream) / (time.perf_counter() - start)
        rows.append(f"{4:>6}  {64:>5}   on  {rate:>11,.0f}")
    emit(f"service ingest throughput ({len(stream)} ratings)", "\n".join(rows))


# -- cluster scaling -------------------------------------------------------

CLUSTER_RATINGS = 6_000
CLUSTER_QUEUE_DEPTH = 2_048


def _cluster_rates(workers: int, stream: list, queue_depth: int) -> tuple:
    """(ack, applied) ratings/sec through a ``workers``-process cluster.

    The ack clock covers the submit loop alone: each return means the
    rating is in the coordinator WAL and queued to its owner, the
    contract behind the HTTP 202.  With the burst larger than one
    worker's queue, a small cluster spends most of the loop throttled
    by backpressure to its workers' durable apply rate
    (``wal_fsync_every=1``), while a larger one admits the burst on
    aggregate credit and drains it in parallel -- that admission
    capacity is what the ``scaling`` ratio prices.  The applied clock
    runs on through ``flush()``, i.e. until every rating has been
    applied and its trust digests folded in.
    """
    from repro.service.cluster import ClusterCoordinator

    wal_dir = tempfile.mkdtemp(prefix=f"bench-cluster-{workers}w-")
    try:
        cluster = ClusterCoordinator(
            ServiceConfig(
                cluster_workers=workers,
                cluster_queue_depth=queue_depth,
                wal_dir=wal_dir,
                wal_fsync_every=1,
                cluster_ack_fsync_every=64,
                batch_max_ratings=512,
                detector_window=32,
                detector_stride=8,
                snapshot_every=0,
                wal_gc=False,
            )
        )
        try:
            start = time.perf_counter()
            for rating in stream:
                cluster.submit(rating)
            acked = time.perf_counter() - start
            cluster.flush()
            applied = time.perf_counter() - start
        finally:
            cluster.close()
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)
    return len(stream) / acked, len(stream) / applied


def run_cluster_bench(
    worker_counts,
    n_ratings: int = CLUSTER_RATINGS,
    queue_depth: int = CLUSTER_QUEUE_DEPTH,
) -> dict:
    """Ack/applied throughput rows plus the ack-rate scaling ratio."""
    stream = build_stream(n=n_ratings, seed=3)
    rows = []
    for workers in worker_counts:
        ack, applied = _cluster_rates(workers, stream, queue_depth)
        rows.append(
            {
                "workers": workers,
                "ack_ratings_per_second": round(ack, 1),
                "applied_ratings_per_second": round(applied, 1),
            }
        )
    base = min(rows, key=lambda r: r["workers"])
    top = max(rows, key=lambda r: r["workers"])
    return {
        "n_ratings": n_ratings,
        "queue_depth": queue_depth,
        "worker_fsync_every": 1,
        "ack_fsync_every": 64,
        "cpu_count": os.cpu_count() or 1,
        "rows": rows,
        "scaling": round(
            top["ack_ratings_per_second"] / base["ack_ratings_per_second"], 2
        ),
        "applied_scaling": round(
            top["applied_ratings_per_second"]
            / base["applied_ratings_per_second"],
            2,
        ),
        "scaling_span": f"{base['workers']}->{top['workers']} workers",
    }


def _cluster_report(stats: dict) -> str:
    lines = [f"{'workers':>8}  {'ack/sec':>12}  {'applied/sec':>12}"]
    for row in stats["rows"]:
        lines.append(
            f"{row['workers']:>8}  {row['ack_ratings_per_second']:>12,.0f}"
            f"  {row['applied_ratings_per_second']:>12,.0f}"
        )
    lines.append(
        f"ingest (ack) scaling {stats['scaling_span']}: x{stats['scaling']} "
        f"(applied: x{stats['applied_scaling']}; burst {stats['n_ratings']}, "
        f"queue depth {stats['queue_depth']}, worker fsync every append, "
        f"{stats['cpu_count']} cpu(s))"
    )
    return "\n".join(lines)


def check_scaling(stats: dict, min_scaling: float) -> list:
    """Budget violations for CI; empty when the cluster tier scales.

    The floor is only enforceable where the hardware can express
    process parallelism: when the box has fewer cores than the
    largest benched worker count, coordinator and workers time-slice
    one CPU and the ack ratio is pinned near 1.0 no matter how the
    tier behaves, so the check degrades to a note instead of a
    failure (the ``scaling`` number still lands in the artifact).
    """
    top_workers = max(row["workers"] for row in stats["rows"])
    if stats["cpu_count"] < top_workers:
        print(
            f"note: scaling floor x{min_scaling} not enforced -- "
            f"{stats['cpu_count']} cpu(s) cannot host {top_workers} "
            f"workers in parallel (measured: x{stats['scaling']})",
            file=sys.stderr,
        )
        return []
    if stats["scaling"] < min_scaling:
        return [
            f"cluster ack throughput scaled x{stats['scaling']} across "
            f"{stats['scaling_span']} (floor: x{min_scaling})"
        ]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        metavar="N,N,...",
        help="also bench the multi-process cluster tier at these "
        "worker counts (comma-separated), e.g. 1,2,4",
    )
    parser.add_argument(
        "--ratings",
        type=int,
        default=CLUSTER_RATINGS,
        help="stream length for the cluster section",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write cluster stats as a JSON artifact"
    )
    parser.add_argument(
        "--min-scaling",
        type=float,
        default=None,
        help="fail (exit 1) when largest-vs-smallest worker-count "
        "throughput scales below this factor",
    )
    parser.add_argument(
        "--skip-grid",
        action="store_true",
        help="skip the in-process shard/batch grid",
    )
    args = parser.parse_args(argv)

    if not args.skip_grid:
        shard_grid_report()
    if not args.workers:
        return 0

    worker_counts = sorted({int(part) for part in args.workers.split(",")})
    stats = run_cluster_bench(worker_counts, n_ratings=args.ratings)
    emit(
        f"cluster ingest throughput ({stats['n_ratings']} ratings, durable)",
        _cluster_report(stats),
    )
    if args.json:
        try:
            Path(args.json).write_text(
                json.dumps(stats, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 1
    if args.min_scaling is not None:
        problems = check_scaling(stats, args.min_scaling)
        if problems:
            for problem in problems:
                print(f"budget violation: {problem}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
