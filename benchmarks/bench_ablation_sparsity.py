"""Ablation -- detectability on sparse vs. dense rating traffic.

The paper's motivation is precisely the hard case: "a product only has
a few reviews/ratings and even fewer recent reviews/ratings".  This
ablation injects the same campaign into Netflix-like traces of varying
popularity and measures the model-error drop factor: on sparse traffic
the 50-rating analysis windows stretch over months and dilute the
60-day campaign, shrinking the drop -- quantifying the method's
data-hunger boundary.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig5_netflix
from repro.data.netflix import NetflixTraceConfig

from benchmarks.conftest import emit, run_once

PEAK_RATES = (2.0, 4.0, 8.0)


def sweep():
    outcomes = {}
    for peak_rate in PEAK_RATES:
        config = NetflixTraceConfig(peak_rate=peak_rate)
        result = fig5_netflix.run(seed=0, trace_config=config)
        mask = (result.times_attacked >= result.attack_start) & (
            result.times_attacked <= result.attack_end
        )
        outcomes[peak_rate] = {
            "n_ratings": len(result.original),
            "drop": result.error_drop,
            "windows_in_attack": int(mask.sum()),
        }
    return outcomes


def test_ablation_sparsity(benchmark):
    outcomes = run_once(benchmark, sweep)
    body = "\n".join(
        f"peak rate {rate:3.0f}/day: {o['n_ratings']:5d} ratings, "
        f"{o['windows_in_attack']:2d} windows touch the campaign, "
        f"error drop {o['drop']:4.1f}x"
        for rate, o in outcomes.items()
    )
    emit("Ablation -- trace sparsity vs. detectability", body)

    # The campaign stays visible at every density...
    for rate, o in outcomes.items():
        assert o["drop"] > 1.3, rate
    # ...but sparser traffic gives the campaign fewer dedicated windows.
    assert (
        outcomes[2.0]["windows_in_attack"] <= outcomes[8.0]["windows_in_attack"]
    )
    # Denser traffic separates at least as sharply as the sparsest.
    assert outcomes[8.0]["drop"] >= outcomes[2.0]["drop"] - 0.5
