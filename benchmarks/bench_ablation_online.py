"""Ablation -- online (streaming) vs. batch detection.

The streaming detector trades alarm latency for compute via its
``stride``.  This bench measures, over a batch of illustrative runs:

* detection parity -- the streaming detector catches campaigns the
  batch detector catches;
* alarm latency -- how many days after the campaign onset the first
  alarm fires, per stride.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.online import OnlineARDetector
from repro.evaluation.montecarlo import monte_carlo
from repro.experiments.fig4 import build_illustrative_detector
from repro.evaluation.detection import interval_detected
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative

from benchmarks.conftest import emit, run_once

N_RUNS = 30
STRIDES = (1, 5, 10)


def sweep():
    config = IllustrativeConfig()
    batch_detector = build_illustrative_detector()

    def one_run(rng: np.random.Generator):
        trace = generate_illustrative(config, rng)
        batch_hit = interval_detected(
            batch_detector.window_errors(trace.attacked),
            config.attack_start,
            config.attack_end,
        )
        latencies = {}
        hits = {}
        for stride in STRIDES:
            online = OnlineARDetector(
                window_size=50, stride=stride, threshold=0.10
            )
            online.observe_many(trace.attacked)
            in_window_alarms = [
                v
                for v in online.alarms
                if v.window.end_time >= config.attack_start
            ]
            hits[stride] = bool(in_window_alarms)
            latencies[stride] = (
                in_window_alarms[0].window.end_time - config.attack_start
                if in_window_alarms
                else None
            )
        return batch_hit, hits, latencies

    results = monte_carlo(one_run, n_runs=N_RUNS, master_seed=0)
    batch_rate = results.fraction(lambda o: o[0])
    online_rates = {
        stride: results.fraction(lambda o, s=stride: o[1][s]) for stride in STRIDES
    }
    mean_latency = {}
    for stride in STRIDES:
        values = [
            o[2][stride] for o in results.outcomes if o[2][stride] is not None
        ]
        mean_latency[stride] = float(np.mean(values)) if values else float("nan")
    return batch_rate, online_rates, mean_latency


def test_online_vs_batch(benchmark):
    batch_rate, online_rates, mean_latency = run_once(benchmark, sweep)
    body = [f"batch detection rate: {batch_rate:.2f}"]
    for stride in STRIDES:
        body.append(
            f"stride {stride:2d}: detection {online_rates[stride]:.2f}, "
            f"mean first-alarm latency {mean_latency[stride]:.1f} days "
            "after campaign onset"
        )
    emit("Ablation -- online vs. batch detection", "\n".join(body))

    # Streaming detection stays within a small margin of batch...
    for stride in STRIDES:
        assert online_rates[stride] >= batch_rate - 0.15, stride
    # ...and finer strides never detect less or alarm later.
    assert online_rates[1] >= online_rates[10] - 1e-9
    assert mean_latency[1] <= mean_latency[10] + 1.0
