"""Fig. 5 -- AR model error on (synthetic) Netflix movie data.

Paper recipe on the Netflix-like trace: inject a 60-day collaborative
campaign (days 212-272) into a Dinosaur-Planet-shaped rating stream and
show the AR model error dips during the campaign while the original
trace's error stays level.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig5_netflix

from benchmarks.conftest import emit, run_once


def test_fig5_netflix_model_error(benchmark):
    result = run_once(benchmark, lambda: fig5_netflix.run(seed=0))
    emit("Fig. 5 -- Netflix-like trace model error", fig5_netflix.format_report(result))

    mask = (result.times_attacked >= result.attack_start) & (
        result.times_attacked <= result.attack_end
    )
    assert mask.any()
    in_attack_min = float(np.min(result.errors_attacked[mask]))
    original_mean = float(np.mean(result.errors_original))
    # Paper shape: "the model error drops significantly during the time
    # when the collaborative unfair ratings are present".
    assert in_attack_min < 0.5 * original_mean
    # Outside the campaign the attacked trace behaves like the original.
    outside = result.errors_attacked[~mask]
    assert abs(float(np.mean(outside)) - original_mean) < 0.05
