"""Figs. 10-12 -- marketplace aggregation robustness.

Fig. 10: honest products (bias 0.15) -- all three schemes track quality.
Fig. 11: dishonest products (bias 0.15) -- simple and beta averages are
inflated; the modified weighted average stays near quality.
Fig. 12: dishonest products (bias 0.2) -- the baselines' inflation
grows toward ~0.1 while the proposed scheme stays within a few
hundredths ("an order of magnitude" smaller in the paper).
"""

from __future__ import annotations

from repro.experiments import marketplace_aggregation

from benchmarks.conftest import emit, run_once


def test_fig10_fig11_bias_015(benchmark):
    result = run_once(
        benchmark, lambda: marketplace_aggregation.run(bias_shift=0.15, seed=0)
    )
    emit(
        "Figs. 10/11 -- aggregation, bias 0.15",
        marketplace_aggregation.format_report(result),
    )
    # Fig. 10: honest products agree across schemes.
    for errors in result.honest_errors.values():
        assert errors.mean_abs_error < 0.05
    # Fig. 11: baselines inflated, proposed close to quality.
    proposed = result.dishonest_errors["modified_weighted_average"]
    simple = result.dishonest_errors["simple_average"]
    assert simple.mean_signed_error > 0.03
    assert abs(proposed.mean_signed_error) < 0.03
    assert abs(proposed.mean_signed_error) < simple.mean_signed_error


def test_fig12_bias_02(benchmark):
    result = run_once(
        benchmark, lambda: marketplace_aggregation.run(bias_shift=0.2, seed=0)
    )
    emit(
        "Fig. 12 -- aggregation, bias 0.2",
        marketplace_aggregation.format_report(result),
    )
    proposed = result.dishonest_errors["modified_weighted_average"]
    simple = result.dishonest_errors["simple_average"]
    beta = result.dishonest_errors["beta_function"]
    # Baselines drift toward ~0.1 above quality; proposed stays small.
    assert simple.mean_signed_error > 0.05
    assert beta.mean_signed_error > 0.05
    assert abs(proposed.mean_signed_error) < 0.03
    # The paper's headline gap: baselines' worst-case error is several
    # times the proposed scheme's average deviation.
    assert simple.max_abs_error > 2.5 * abs(proposed.mean_signed_error) + 0.02
