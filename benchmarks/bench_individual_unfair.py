"""Section II-B's damage claim -- individual vs. collaborative unfairness.

"Compared with collaborative unfair ratings, individual unfair ratings
usually cause much less damage.  First, individual high ratings and
individual low ratings can cancel each other..."  Quantified: the same
unfair mass at the same bias, allocated three ways.
"""

from __future__ import annotations

from repro.experiments import individual_unfair

from benchmarks.conftest import emit, run_once

N_RUNS = 30


def test_individual_vs_collaborative(benchmark):
    result = run_once(
        benchmark, lambda: individual_unfair.run(n_runs=N_RUNS, seed=0)
    )
    emit(
        "Section II-B -- individual vs. collaborative unfairness",
        individual_unfair.format_report(result),
    )
    campaign = result.outcomes["collaborative_campaign"]
    symmetric = result.outcomes["individual_symmetric"]
    one_sided = result.outcomes["individual_one_sided"]
    # Cancellation: symmetric dispositions shift the mean far less.
    assert abs(symmetric.mean_shift) < 0.4 * abs(campaign.mean_shift)
    # Concentration: the campaign's transient damage dominates.
    assert campaign.peak_window_shift > one_sided.peak_window_shift + 0.02
    # The temporal detector fires on coordination, not disposition.
    assert campaign.detection_rate > 0.6
    assert one_sided.detection_rate < campaign.detection_rate - 0.3
    assert symmetric.detection_rate < 0.3
