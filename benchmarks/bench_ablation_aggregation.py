"""Ablation -- aggregation weight rules and collaborator-mix sweep.

Isolates why the modified weighted average wins: the ``max(T - 0.5, 0)``
rule both *drops* at-or-below-neutral raters and *re-weights* the rest.
Compared against the raw-trust weighted average (no drop), the hard
cutoff (drop, equal weights), the trust-oblivious simple average, and
the classic robust statistics (median, 10 % trimmed mean) -- which are
NOT a substitute here: the colluders are a coordinated near-majority
whose values are not outliers, exactly the regime robust location
estimators cannot fix.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.methods import (
    ModifiedWeightedAverage,
    PlainWeightedAverage,
    SimpleAverage,
    ThresholdedAverage,
)
from repro.aggregation.robust import MedianAggregator, TrimmedMeanAggregator
from repro.evaluation.montecarlo import monte_carlo
from repro.experiments.table1 import Table1Config

from benchmarks.conftest import emit, run_once

N_RUNS = 300
RULES = {
    "modified_weighted_average": ModifiedWeightedAverage(),
    "thresholded_average": ThresholdedAverage(),
    "plain_weighted_average": PlainWeightedAverage(),
    "simple_average": SimpleAverage(),
    "median": MedianAggregator(),
    "trimmed_mean_10": TrimmedMeanAggregator(trim=0.1),
}


def sweep_ratios():
    """aggregator -> ratio -> mean aggregate (desired is 0.8)."""
    table = {name: {} for name in RULES}
    for ratio in (0.5, 1.0, 2.0):
        config = Table1Config(collaborator_ratio=ratio)

        def one_run(rng, config=config):
            values, trusts = config.draw(rng)
            return {
                name: rule.aggregate(values, trusts)
                for name, rule in RULES.items()
            }

        results = monte_carlo(one_run, n_runs=N_RUNS, master_seed=7)
        for name in RULES:
            table[name][ratio] = results.mean_of(lambda o, n=name: o[n])
    return table


def test_ablation_weight_rules(benchmark):
    table = run_once(benchmark, sweep_ratios)
    lines = ["  rule                        | ratio 0.5 | ratio 1.0 | ratio 2.0"]
    for name, by_ratio in table.items():
        lines.append(
            f"  {name:<27} | " + " | ".join(
                f"{by_ratio[r]:9.3f}" for r in (0.5, 1.0, 2.0)
            )
        )
    lines.append("  (desired aggregate: 0.800)")
    emit(
        "Ablation -- aggregation weight rules vs. collaborator mix",
        "\n".join(lines),
    )

    desired = 0.8
    for ratio in (0.5, 1.0, 2.0):
        mwa_err = abs(table["modified_weighted_average"][ratio] - desired)
        simple_err = abs(table["simple_average"][ratio] - desired)
        plain_err = abs(table["plain_weighted_average"][ratio] - desired)
        # Trust gating beats both no-trust and soft-trust weighting, and
        # the margin grows as collaborators outnumber honest raters.
        assert mwa_err < simple_err
        assert mwa_err < plain_err
    # Even with collaborators at 2x the honest population the gated
    # average stays in honest territory.
    assert table["modified_weighted_average"][2.0] > 0.58
    # The hard cutoff captures most of the benefit -- the drop rule is
    # the load-bearing part of method 3.
    assert abs(table["thresholded_average"][1.0] - desired) < abs(
        table["simple_average"][1.0] - desired
    )
    # Robust statistics are NOT a substitute: a coordinated near-majority
    # whose ratings are not value-outliers drags the median and the
    # trimmed mean nearly as far as the plain mean.
    for rule in ("median", "trimmed_mean_10"):
        assert abs(table["modified_weighted_average"][1.0] - desired) < abs(
            table[rule][1.0] - desired
        ), rule
