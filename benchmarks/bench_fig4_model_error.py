"""Fig. 4 -- moving averages and the AR model-error drop.

Regenerates both panels: the moving average of honest / attacked /
beta-filtered ratings (top) and the AR model error with and without
collaborative raters (bottom).  Paper shape: the campaign lifts the
average, the beta filter barely helps, and the model error drops
visibly inside the attack interval.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig4

from benchmarks.conftest import emit, run_once


def test_fig4_model_error(benchmark):
    result = run_once(benchmark, lambda: fig4.run(seed=0))
    emit("Fig. 4 -- moving average and AR model error", fig4.format_report(result))
    assert result.peak_average_lift > 0.0
    assert result.attack_error_drop > 1.5
    # The filtered moving average stays close to the attacked one --
    # the filter does not defuse the moderate-bias campaign.
    config = result.trace.config
    mask = (result.avg_times_filtered >= config.attack_start) & (
        result.avg_times_filtered <= config.attack_end
    )
    if mask.any():
        attacked_level = np.interp(
            result.avg_times_filtered[mask],
            result.avg_times_attacked,
            result.avg_attacked,
        )
        assert np.max(np.abs(result.avg_filtered[mask] - attacked_level)) < 0.15
