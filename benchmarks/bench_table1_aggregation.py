"""Section III-B.2 table -- the four aggregation methods, 500 runs.

Paper values: simple average 0.6365, beta aggregation 0.6138, modified
weighted average 0.7445, Sun et al. trust model 0.5985; desired 0.8.
Reproduced shape: method 3 lands far closer to the honest consensus
than every alternative, which all collapse toward ~0.6 under the 50 %
collaborator mix.
"""

from __future__ import annotations

from repro.experiments import table1
from repro.experiments.table1 import PAPER_TABLE1

from benchmarks.conftest import emit, run_once

N_RUNS = 500


def test_table1_aggregation_comparison(benchmark):
    result = run_once(benchmark, lambda: table1.run(n_runs=N_RUNS, seed=0))
    emit("Section III-B.2 -- aggregation comparison", table1.format_report(result))

    assert result.best_method() == 3
    # Method 3 clears the pack by a visible margin.
    others = [value for method, value in result.aggregates.items() if method != 3]
    assert result.aggregates[3] > max(others) + 0.04
    # Every method lands within 0.10 of the paper (the residual gap
    # comes from the variance-vs-std reading of the setup; see DESIGN.md).
    for method, paper_value in PAPER_TABLE1.items():
        assert abs(result.aggregates[method] - paper_value) < 0.10, method
