"""Recovery-time benchmark: bounded replay vs full-history replay.

Prices what the tiered storage + segmented WAL buy at restart.  For a
range of total history sizes with a **fixed** uncovered WAL suffix,
it crashes an engine (drops it without flushing) and times
``RatingEngine.recover``:

* **tiered** -- the prefix lives in the sqlite cold tiers; recovery
  rolls them back to the snapshot position and re-ingests only the
  suffix.  Time should stay flat as history grows.
* **memory** -- the store can only be rebuilt by replaying the whole
  log, so recovery time grows linearly with history.

The flatness claim is the budget: with history growing 16x, tiered
recovery time may grow by at most ``--max-growth`` (sqlite metadata
scans grow slowly; the replay work does not grow at all).  Bit-for-bit
correctness of both paths is asserted in
``tests/test_service_recovery_crash.py``; this bench only prices them.

Also runs standalone without pytest::

    PYTHONPATH=src python benchmarks/bench_recovery.py --json BENCH_recovery.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # standalone `python benchmarks/bench_recovery.py`
    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}")

from repro.ratings.models import Rating
from repro.service import RatingEngine, ServiceConfig

HISTORIES = (2_000, 8_000, 32_000)
SUFFIX = 1_000
SEGMENT_ENTRIES = 2_000
N_PRODUCTS = 8
N_RATERS = 50


def _make_stream(n: int) -> list:
    rng = np.random.default_rng(1234)
    ratings = []
    for i in range(n):
        ratings.append(
            Rating(
                rating_id=i,
                rater_id=int(rng.integers(0, N_RATERS)),
                product_id=i % N_PRODUCTS,
                value=round(float(np.clip(rng.normal(0.7, 0.1), 0.0, 1.0)), 3),
                time=float(i),
            )
        )
    return ratings


def _config(wal_dir: Path, backend: str) -> ServiceConfig:
    return ServiceConfig(
        wal_dir=str(wal_dir),
        store_backend=backend,
        wal_segment_entries=SEGMENT_ENTRIES,
        wal_fsync_every=256,  # building history, not measuring durability
        n_shards=1,
        batch_max_ratings=4096,
        detector_window=12,
        detector_order=2,
        detector_stride=25,
        detector_threshold=0.2,
    )


def _build_history(wal_dir: Path, backend: str, n_total: int, suffix: int) -> None:
    """Run an engine to ``n_total`` ratings, snapshotting so exactly
    ``suffix`` WAL entries stay uncovered, then crash it."""
    engine = RatingEngine(_config(wal_dir, backend))
    stream = _make_stream(n_total)
    engine.submit_many(stream[: n_total - suffix])
    engine.snapshot()
    engine.submit_many(stream[n_total - suffix :])
    engine.wal.close()  # crash: nothing after the snapshot is flushed
    del engine


def _time_recovery(wal_dir: Path, repeats: int = 3) -> float:
    """Best-of-N wall time for a full recover + close cycle."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        engine = RatingEngine.recover(wal_dir)
        elapsed = time.perf_counter() - start
        engine.close()
        best = min(best, elapsed)
    return best


def run_bench(histories=HISTORIES, suffix=SUFFIX) -> dict:
    rows = []
    workdir = Path(tempfile.mkdtemp(prefix="bench-recovery-"))
    try:
        for n_total in histories:
            row = {"history": n_total, "suffix": suffix}
            for backend in ("tiered", "memory"):
                wal_dir = workdir / f"{backend}-{n_total}"
                _build_history(wal_dir, backend, n_total, suffix)
                row[f"{backend}_recover_seconds"] = round(
                    _time_recovery(wal_dir), 4
                )
                shutil.rmtree(wal_dir)
            rows.append(row)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    smallest, largest = rows[0], rows[-1]
    history_growth = largest["history"] / smallest["history"]

    def growth(key: str) -> float:
        return round(largest[key] / smallest[key], 2)

    return {
        "suffix": suffix,
        "segment_entries": SEGMENT_ENTRIES,
        "history_growth": round(history_growth, 1),
        "rows": rows,
        "tiered_growth": growth("tiered_recover_seconds"),
        "memory_growth": growth("memory_recover_seconds"),
        "speedup_at_largest": round(
            largest["memory_recover_seconds"]
            / largest["tiered_recover_seconds"],
            2,
        ),
    }


def _report(stats: dict) -> str:
    lines = [
        f"{'history':>10} {'suffix':>8} {'tiered':>10} {'memory':>10}",
    ]
    for row in stats["rows"]:
        lines.append(
            f"{row['history']:>10} {row['suffix']:>8} "
            f"{row['tiered_recover_seconds']:>9.3f}s "
            f"{row['memory_recover_seconds']:>9.3f}s"
        )
    lines.append(
        f"history x{stats['history_growth']}: tiered recovery grew "
        f"x{stats['tiered_growth']}, memory grew x{stats['memory_growth']} "
        f"(tiered is {stats['speedup_at_largest']}x faster at the top end)"
    )
    return "\n".join(lines)


def check_budget(stats: dict, max_growth: float) -> list:
    """Budget violations for CI; empty when recovery stays flat."""
    problems = []
    if stats["tiered_growth"] > max_growth:
        problems.append(
            f"tiered recovery time grew x{stats['tiered_growth']} across a "
            f"x{stats['history_growth']} history increase (budget: "
            f"x{max_growth})"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="PATH", help="write the stats as a JSON artifact"
    )
    parser.add_argument(
        "--max-growth",
        type=float,
        default=None,
        help="fail (exit 1) when tiered recovery time grows more than "
        "this factor across the history sweep",
    )
    args = parser.parse_args(argv)

    stats = run_bench()
    emit("Recovery time vs history size (fixed WAL suffix)", _report(stats))
    if args.json:
        try:
            Path(args.json).write_text(
                json.dumps(stats, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.json}")
    if args.max_growth is not None:
        problems = check_budget(stats, args.max_growth)
        if problems:
            for problem in problems:
                print(f"budget violation: {problem}", file=sys.stderr)
            return 1
    return 0


def test_recovery_flatness_budget(benchmark):
    """Pytest entry: bounded recovery must actually be bounded."""
    stats = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    emit("Recovery time vs history size (fixed WAL suffix)", _report(stats))
    assert stats["tiered_growth"] < stats["memory_growth"]
    assert stats["speedup_at_largest"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main())
