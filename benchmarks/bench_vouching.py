"""Extension -- self-promotion rings vs. bridge attacks on indirect trust.

Exercises the Fig. 1 Recommendation Buffer path the paper never
evaluates: a collusion ring vouching for itself earns exactly nothing
until an honest veteran is fooled, and even then multipath averaging
caps the ring's standing below honestly vouched newcomers.
"""

from __future__ import annotations

from repro.experiments import vouching

from benchmarks.conftest import emit, run_once

N_RUNS = 20


def test_vouching_ring_resistance(benchmark):
    result = run_once(benchmark, lambda: vouching.run(n_runs=N_RUNS, seed=0))
    emit(
        "Extension -- vouching ring vs. bridge attacks",
        vouching.format_report(result),
    )
    # Isolated ring: exactly inert.
    assert result.ring_trust(0) == 0.0
    # One bridge unlocks the ring...
    assert result.ring_trust(1) > 0.05
    # ...but averaging caps it below honest newcomers at every sweep point,
    # and additional bridges do not multiply the leak.
    for n_bridges, trusts in result.by_bridges.items():
        assert trusts["ring"] < trusts["newcomers"], n_bridges
    assert result.ring_trust(8) < 2.0 * result.ring_trust(1)
