"""AR fast-path benchmark: streaming, batched, and cached-score reads.

Prices the three fast paths of this repo's AR pipeline against the
seed implementations they replaced (per-row Python design building +
``lstsq`` per fit; full re-aggregation per ``score()``):

* **cold fit** -- one ``arcov`` call on a detector-sized window
  (vectorized normal equations vs loop-built design + lstsq);
* **streaming refit** -- a window-50/stride-5 detector pass over a
  long stream (:class:`~repro.signal.sliding.SlidingCovarianceFitter`
  rank-1 updates vs refitting the buffer from scratch each time);
* **batch windows** -- every overlapping window of a stream
  (:func:`~repro.signal.sliding.fit_windows` stacked solves vs a
  per-window loop);
* **score reads** -- repeated ``RatingEngine.score()`` on a hot
  product (incremental aggregate cache vs full recompute).

Speedups are equivalence-checked in ``tests/test_signal_sliding.py``;
this bench only prices them, and CI enforces soft floors so a fast-path
regression fails the build.

Also runs standalone without pytest::

    PYTHONPATH=src python benchmarks/bench_ar_fastpath.py --json BENCH_ar_fastpath.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # standalone `python benchmarks/bench_ar_fastpath.py`
    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}")

from repro.ratings.models import Rating
from repro.service import RatingEngine, ServiceConfig
from repro.signal import (
    ARModel,
    CountWindower,
    SlidingCovarianceFitter,
    arcov,
    fit_windows,
    normalized_model_error,
)

ORDER = 4
WINDOW = 50
STRIDE = 5


# -- the seed implementations (what the fast paths replaced) ----------------

def seed_arcov(x: np.ndarray, order: int) -> ARModel:
    """The replaced ``arcov``: per-row Python slicing, lstsq, and a
    second row build for the residual pass (verbatim seed structure)."""
    x = np.asarray(x, dtype=float).ravel()
    if not np.all(np.isfinite(x)):
        raise ValueError("signal contains NaN or infinite samples")
    p = order
    n = x.size
    design = np.stack(
        [x[p + i - 1 : i - 1 if i > 0 else None : -1][:p] for i in range(n - p)]
    )
    target = x[p:]
    solution, *_ = np.linalg.lstsq(design, -target, rcond=None)
    a = np.concatenate(([1.0], solution))
    rows = np.stack(
        [x[p + i - 1 : i - 1 if i > 0 else None : -1][:p] for i in range(n - p)]
    )
    residuals = x[p:] + rows @ a[1:]
    error_energy = float(np.dot(residuals, residuals))
    signal_energy = float(np.dot(x[p:], x[p:]))
    return ARModel(
        order=order,
        coefficients=np.asarray(a, dtype=float),
        error_energy=error_energy,
        signal_energy=signal_energy,
        normalized_error=normalized_model_error(error_energy, signal_energy),
        method="covariance",
        n_samples=n,
        residuals=residuals,
    )


def seed_streaming_pass(values: np.ndarray) -> int:
    """Seed online loop: rebuild the lstsq problem at every refit."""
    buffer: list = []
    since = 0
    fits = 0
    for value in values:
        buffer.append(value)
        if len(buffer) > WINDOW:
            buffer.pop(0)
        since += 1
        if len(buffer) == WINDOW and since >= STRIDE:
            since = 0
            seed_arcov(np.asarray(buffer), ORDER)
            fits += 1
    return fits


def fast_streaming_pass(values: np.ndarray) -> int:
    """Incremental online loop: rank-1 window slides, O(p^3) refits."""
    fitter = SlidingCovarianceFitter(order=ORDER, capacity=WINDOW)
    since = 0
    fits = 0
    for value in values:
        fitter.push(value)
        since += 1
        if fitter.full and since >= STRIDE:
            since = 0
            fitter.fit()
            fits += 1
    return fits


def seed_batch_pass(values: np.ndarray, windower) -> int:
    """Seed batch loop: one lstsq fit per window."""
    times = np.arange(values.size, dtype=float)
    fits = 0
    for window in windower.windows(times):
        if window.size <= 2 * ORDER:
            continue
        seed_arcov(window.values(values), ORDER)
        fits += 1
    return fits


# -- harness ----------------------------------------------------------------

def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _build_engine(n_ratings: int) -> RatingEngine:
    rng = np.random.default_rng(42)
    engine = RatingEngine(
        ServiceConfig(n_shards=1, batch_max_ratings=10_000, detector_stride=25)
    )
    for i in range(n_ratings):
        engine.submit(
            Rating(
                rating_id=i,
                rater_id=int(rng.integers(0, 50)),
                product_id=0,
                value=round(float(np.clip(rng.normal(0.7, 0.1), 0, 1)), 3),
                time=float(i),
            )
        )
    return engine


def run_bench(stream_n: int = 3000, batch_n: int = 2000, score_n: int = 2000,
              score_reads: int = 200) -> dict:
    rng = np.random.default_rng(7)
    stream = np.clip(rng.normal(0.6, 0.15, size=stream_n), 0.0, 1.0)
    batch_values = np.clip(rng.normal(0.6, 0.15, size=batch_n), 0.0, 1.0)
    windower = CountWindower(size=WINDOW, step=STRIDE)

    window = stream[:WINDOW]
    cold_fast = _best_of(lambda: [arcov(window, ORDER) for _ in range(50)]) / 50
    cold_seed = _best_of(
        lambda: [seed_arcov(window, ORDER) for _ in range(50)]
    ) / 50

    n_refits = fast_streaming_pass(stream)  # warm-up + fit count
    stream_fast = _best_of(lambda: fast_streaming_pass(stream))
    stream_seed = _best_of(lambda: seed_streaming_pass(stream))

    n_windows = seed_batch_pass(batch_values, windower)
    batch_fast = _best_of(lambda: fit_windows(batch_values, ORDER, windower))
    batch_seed = _best_of(lambda: seed_batch_pass(batch_values, windower))

    engine = _build_engine(score_n)
    engine.score(0)  # populate the cache entry
    score_fast = _best_of(
        lambda: [engine.score(0) for _ in range(score_reads)]
    ) / score_reads
    score_seed = _best_of(
        lambda: [engine._score_uncached(0) for _ in range(score_reads)]
    ) / score_reads

    def ratio(seed: float, fast: float):
        return round(seed / fast, 2) if fast > 0 else None

    return {
        "order": ORDER,
        "window": WINDOW,
        "stride": STRIDE,
        "cold_fit_fast_us": round(cold_fast * 1e6, 2),
        "cold_fit_seed_us": round(cold_seed * 1e6, 2),
        "cold_fit_speedup": ratio(cold_seed, cold_fast),
        "stream_samples": stream_n,
        "stream_refits": n_refits,
        "stream_fast_seconds": round(stream_fast, 4),
        "stream_seed_seconds": round(stream_seed, 4),
        "stream_speedup": ratio(stream_seed, stream_fast),
        "batch_samples": batch_n,
        "batch_windows": n_windows,
        "batch_fast_seconds": round(batch_fast, 4),
        "batch_seed_seconds": round(batch_seed, 4),
        "batch_speedup": ratio(batch_seed, batch_fast),
        "score_ratings": score_n,
        "score_cached_us": round(score_fast * 1e6, 2),
        "score_uncached_us": round(score_seed * 1e6, 2),
        "score_speedup": ratio(score_seed, score_fast),
    }


def _report(stats: dict) -> str:
    return "\n".join(
        [
            f"cold fit (one {stats['window']}-sample window)"
            f"    {stats['cold_fit_seed_us']:.1f}us -> "
            f"{stats['cold_fit_fast_us']:.1f}us"
            f"  ({stats['cold_fit_speedup']}x)",
            f"streaming refit ({stats['stream_refits']} refits over "
            f"{stats['stream_samples']} samples)"
            f"   {stats['stream_seed_seconds']:.3f}s -> "
            f"{stats['stream_fast_seconds']:.3f}s"
            f"  ({stats['stream_speedup']}x)",
            f"batch windows ({stats['batch_windows']} windows over "
            f"{stats['batch_samples']} samples)"
            f"   {stats['batch_seed_seconds']:.3f}s -> "
            f"{stats['batch_fast_seconds']:.3f}s"
            f"  ({stats['batch_speedup']}x)",
            f"score() on {stats['score_ratings']} ratings"
            f"        {stats['score_uncached_us']:.1f}us -> "
            f"{stats['score_cached_us']:.1f}us"
            f"  ({stats['score_speedup']}x)",
        ]
    )


def check_budget(stats: dict, min_stream: float, min_batch: float) -> list:
    """Budget violations for CI; empty when the fast paths hold up."""
    problems = []
    if stats["stream_speedup"] is not None and stats["stream_speedup"] < min_stream:
        problems.append(
            f"streaming speedup {stats['stream_speedup']}x is below the "
            f"{min_stream}x floor"
        )
    if stats["batch_speedup"] is not None and stats["batch_speedup"] < min_batch:
        problems.append(
            f"batch speedup {stats['batch_speedup']}x is below the "
            f"{min_batch}x floor"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="PATH", help="write the stats as a JSON artifact"
    )
    parser.add_argument(
        "--min-stream-speedup",
        type=float,
        default=None,
        help="fail (exit 1) when the streaming refit speedup is below this",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=None,
        help="fail (exit 1) when the batch window speedup is below this",
    )
    args = parser.parse_args(argv)

    stats = run_bench()
    emit("AR fast paths: seed vs incremental/batched/cached", _report(stats))
    if args.json:
        try:
            Path(args.json).write_text(
                json.dumps(stats, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.json}")
    if args.min_stream_speedup is not None or args.min_batch_speedup is not None:
        problems = check_budget(
            stats,
            args.min_stream_speedup or 0.0,
            args.min_batch_speedup or 0.0,
        )
        if problems:
            for problem in problems:
                print(f"budget violation: {problem}", file=sys.stderr)
            return 1
    return 0


def test_ar_fastpath_budget(benchmark):
    """Pytest entry: the fast paths must actually be faster."""
    stats = benchmark.pedantic(run_bench, rounds=1, iterations=1)
    emit("AR fast paths: seed vs incremental/batched/cached", _report(stats))
    assert stats["stream_speedup"] > 1.0
    assert stats["batch_speedup"] > 1.0
    assert stats["score_speedup"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main())
