"""In-text detection experiment -- 500 Monte-Carlo repetitions.

Paper: "we perform the experiment for 500 times and obtain Detection
Ratio = 0.782; False Alarm Ratio = 0.06."  The bench repeats the full
500 runs with the calibrated threshold and additionally sweeps the
threshold into an ROC curve to show the operating point is not a
knife-edge.
"""

from __future__ import annotations

from repro.evaluation.roc import operating_point, roc_from_scores
from repro.experiments import detection500

from benchmarks.conftest import emit, run_once

N_RUNS = 500


def test_detection_and_false_alarm_ratios(benchmark):
    result = run_once(benchmark, lambda: detection500.run(n_runs=N_RUNS, seed=0))

    curve = roc_from_scores(
        result.attacked_error_minima, result.honest_error_minima
    )
    best = operating_point(curve, max_false_alarm=0.06)
    body = detection500.format_report(result) + (
        f"\n  ROC AUC over {N_RUNS} runs: {curve.auc():.3f}"
        f"\n  best operating point with FA <= 0.06: threshold "
        f"{best.threshold:.3f} -> detection {best.detection_ratio:.3f}, "
        f"false alarm {best.false_alarm_ratio:.3f}"
    )
    emit(f"Detection experiment ({N_RUNS} runs)", body)

    # Paper band: detection well above false alarms; FA under ~10%.
    assert result.detection_ratio >= 0.7
    assert result.false_alarm_ratio <= 0.12
    assert curve.auc() > 0.9
