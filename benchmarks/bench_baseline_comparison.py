"""Section IV-B baseline comparison -- existing schemes vs. strategy 2.

Paper: "Surprisingly, no existing algorithms are able to detect
collaborative unfair raters that use their second strategy... the
detection ratios are all 0."  The bench regenerates the comparison:
every literature baseline (beta filter, entropy change, clustering,
endorsement) against both collusion strategies, alongside the AR
detector.
"""

from __future__ import annotations

from repro.experiments import baselines

from benchmarks.conftest import emit, run_once

N_RUNS = 10


def test_baselines_vs_strategies(benchmark):
    result = run_once(benchmark, lambda: baselines.run(n_runs=N_RUNS, seed=0))
    emit("Baselines vs. collusion strategies", baselines.format_report(result))

    moderate = {
        name: counts["moderate_bias"] for name, counts in result.table.items()
    }
    # The paper's claim: value-based baselines sit near zero detection
    # against the moderate-bias strategy while the AR detector catches it.
    assert moderate["ar_model_error"].detection_ratio > 0.4
    for name in ("entropy_change", "clustering", "endorsement", "beta_filter"):
        assert moderate[name].detection_ratio < 0.2, name
    # CUSUM (the temporal textbook alternative) does better than the
    # value baselines but still trails the AR detector by a wide margin
    # at a similar-or-worse false-alarm cost.
    assert (
        moderate["cusum"].detection_ratio
        < moderate["ar_model_error"].detection_ratio - 0.2
    )
    # The variance-ratio oracle confirms the variance drop carries only
    # part of the AR statistic's power.
    assert (
        moderate["variance_ratio"].detection_ratio
        < moderate["ar_model_error"].detection_ratio
    )
    # And the large-bias strategy IS caught by at least one classic
    # scheme ("existing schemes can defend against the first strategy").
    large = {name: counts["large_bias"] for name, counts in result.table.items()}
    classic_best = max(
        large[name].detection_ratio
        for name in ("clustering", "endorsement", "beta_filter")
    )
    assert classic_best > 0.3
