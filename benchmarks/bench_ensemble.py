"""Ensemble ingest-throughput benchmark: 1, 2, and 3 suspicion sources.

Prices what each additional online detector costs on the serving hot
path.  The same rating stream is pushed through three engines -- AR
only, AR + co-rating graph, and the full three-source ensemble -- and
the headline number is the full ensemble's slowdown relative to
AR-only.  The ISSUE budget is a soft 2x floor: every source is bounded
(LRU rater sets, capped fanout and edge sets, windowed sweeps), so the
whole ensemble must stay within 2x of the single-detector engine.

Also runs standalone without pytest::

    PYTHONPATH=src python benchmarks/bench_ensemble.py \
        --json BENCH_ensemble.json --max-slowdown 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Tuple

import numpy as np

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # standalone `python benchmarks/bench_ensemble.py`
    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}")

from repro.ratings.models import Rating
from repro.service import RatingEngine, ServiceConfig

N_RATINGS = 20_000
N_PRODUCTS = 40
N_RATERS = 200

CONFIGS: Tuple[Tuple[str, ...], ...] = (
    ("ar",),
    ("ar", "cograph"),
    ("ar", "cograph", "iterfilter"),
)


def _stream(n: int = N_RATINGS) -> List[Rating]:
    rng = np.random.default_rng(13)
    quality = rng.uniform(0.3, 0.8, size=N_PRODUCTS)
    ratings = []
    for i in range(n):
        pid = int(rng.integers(0, N_PRODUCTS))
        value = float(np.clip(quality[pid] + rng.normal(0.0, 0.1), 0, 1))
        ratings.append(
            Rating(
                rating_id=i,
                rater_id=int(rng.integers(0, N_RATERS)),
                product_id=pid,
                value=round(value, 3),
                time=float(i),
            )
        )
    return ratings


def _config(sources: Tuple[str, ...]) -> ServiceConfig:
    return ServiceConfig(
        n_shards=1,
        batch_max_ratings=256,
        detector_window=12,
        detector_order=2,
        detector_stride=3,
        detector_threshold=0.2,
        ensemble_sources=sources,
    )


def _ingest_seconds(sources: Tuple[str, ...], stream: List[Rating], repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        engine = RatingEngine(_config(sources))
        start = time.perf_counter()
        engine.submit_many(stream)
        engine.flush()
        best = min(best, time.perf_counter() - start)
        engine.close()
    return best


def run_bench(n_ratings: int = N_RATINGS) -> dict:
    stream = _stream(n_ratings)
    stats: dict = {"n_ratings": n_ratings, "sources": {}}
    baseline = None
    for sources in CONFIGS:
        seconds = _ingest_seconds(sources, stream)
        rps = n_ratings / seconds
        if baseline is None:
            baseline = rps
        stats["sources"]["+".join(sources)] = {
            "n_sources": len(sources),
            "seconds": round(seconds, 4),
            "ratings_per_second": round(rps, 1),
            "slowdown_vs_ar": round(baseline / rps, 3),
        }
    stats["full_ensemble_slowdown"] = stats["sources"][
        "+".join(CONFIGS[-1])
    ]["slowdown_vs_ar"]
    return stats


def _report(stats: dict) -> str:
    lines = []
    for name, entry in stats["sources"].items():
        lines.append(
            f"{entry['n_sources']} source(s) ({name:<22}) "
            f"{entry['seconds']:.3f}s  "
            f"{entry['ratings_per_second']:>9.0f} ratings/sec  "
            f"({entry['slowdown_vs_ar']:.2f}x vs AR-only)"
        )
    lines.append(
        f"full ensemble slowdown: {stats['full_ensemble_slowdown']:.2f}x "
        f"over {stats['n_ratings']} ratings"
    )
    return "\n".join(lines)


def check_budget(stats: dict, max_slowdown: float) -> list:
    """Budget violations for CI; empty when the ensemble stays cheap."""
    problems = []
    if stats["full_ensemble_slowdown"] > max_slowdown:
        problems.append(
            f"full ensemble ingest is {stats['full_ensemble_slowdown']}x "
            f"AR-only, above the {max_slowdown}x budget"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="PATH", help="write the stats as a JSON artifact"
    )
    parser.add_argument(
        "--max-slowdown",
        type=float,
        default=None,
        help="fail (exit 1) when the 3-source slowdown exceeds this",
    )
    parser.add_argument(
        "--ratings", type=int, default=N_RATINGS, help="stream length"
    )
    args = parser.parse_args(argv)

    stats = run_bench(args.ratings)
    emit("Ensemble ingest throughput: 1 vs 2 vs 3 suspicion sources", _report(stats))
    if args.json:
        try:
            Path(args.json).write_text(
                json.dumps(stats, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.json}")
    if args.max_slowdown is not None:
        problems = check_budget(stats, args.max_slowdown)
        if problems:
            for problem in problems:
                print(f"budget violation: {problem}", file=sys.stderr)
            return 1
    return 0


def test_ensemble_throughput_budget(benchmark):
    """Pytest entry: the full ensemble stays within 2x of AR-only."""
    stats = benchmark.pedantic(lambda: run_bench(8_000), rounds=1, iterations=1)
    emit("Ensemble ingest throughput: 1 vs 2 vs 3 suspicion sources", _report(stats))
    assert stats["full_ensemble_slowdown"] <= 2.0


if __name__ == "__main__":
    raise SystemExit(main())
