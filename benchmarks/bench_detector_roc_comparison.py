"""Consolidated ROC comparison of the temporal detectors.

One figure-style summary: full ROC curves (AUC) for every detector
with a continuous window statistic -- the AR model error (all three
estimators) against the variance-ratio oracle -- on the moderate-bias
illustrative scenario.  Complements the fixed-threshold baseline table
with the threshold-free view.
"""

from __future__ import annotations

import numpy as np

from repro.detectors.ar_detector import ARModelErrorDetector
from repro.evaluation.montecarlo import monte_carlo
from repro.evaluation.roc import roc_from_scores
from repro.signal.windows import CountWindower
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative

from benchmarks.conftest import emit, run_once

N_RUNS = 40


def window_variances(stream, size=50, step=10):
    values = stream.values
    return [
        float(np.var(w.values(values), ddof=1))
        for w in CountWindower(size=size, step=step).windows(stream.times)
    ]


def sweep():
    config = IllustrativeConfig()
    detectors = {
        f"ar_{method}": ARModelErrorDetector(
            order=4,
            threshold=0.10,
            method=method,
            windower=CountWindower(size=50, step=10),
        )
        for method in ("covariance", "autocorrelation", "burg")
    }

    def one_run(rng: np.random.Generator):
        trace = generate_illustrative(config, rng)
        outcome = {}
        for name, detector in detectors.items():
            attacked = min(
                (v.statistic for v in detector.window_errors(trace.attacked)),
                default=1.0,
            )
            honest = min(
                (v.statistic for v in detector.window_errors(trace.honest)),
                default=1.0,
            )
            outcome[name] = (attacked, honest)
        outcome["variance_min"] = (
            min(window_variances(trace.attacked)),
            min(window_variances(trace.honest)),
        )
        return outcome

    results = monte_carlo(one_run, n_runs=N_RUNS, master_seed=0)
    aucs = {}
    for name in list(detectors) + ["variance_min"]:
        attacked = [o[name][0] for o in results.outcomes]
        honest = [o[name][1] for o in results.outcomes]
        aucs[name] = roc_from_scores(attacked, honest).auc()
    return aucs


def test_detector_roc_comparison(benchmark):
    aucs = run_once(benchmark, sweep)
    emit(
        "Detector ROC comparison (moderate-bias scenario)",
        "\n".join(f"  {name:<16} AUC {auc:.3f}" for name, auc in aucs.items()),
    )
    # All AR estimators separate nearly perfectly...
    for method in ("ar_covariance", "ar_autocorrelation", "ar_burg"):
        assert aucs[method] > 0.9, method
    # ...and carry information beyond the raw window-variance minimum.
    assert aucs["ar_covariance"] >= aucs["variance_min"] - 0.05
