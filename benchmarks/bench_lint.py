"""Lint engine cold-vs-warm benchmark with a CI warm-cache budget.

The incremental cache's value proposition is that an unchanged tree
costs almost nothing to re-lint.  This bench prices that claim on the
real ``src/`` tree: one cold run (empty cache), one warm run (full
hit), and one incremental run after touching a single leaf module.
The warm run must re-analyze zero files; CI additionally enforces a
wall-clock budget so a cache regression fails the build instead of
silently slowing every push.

Also runs standalone without pytest::

    PYTHONPATH=src python benchmarks/bench_lint.py --json lint-bench.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # standalone `python benchmarks/bench_lint.py`
    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}")

from repro.devtools.runner import run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
# A leaf module with a small import cone: touching it should
# invalidate only itself plus its few dependents, not the tree.
TOUCH_TARGET = "src/repro/signal/detrend.py"


def _timed_run(cache_dir: Path):
    start = time.perf_counter()
    result = run_lint(
        [REPO_ROOT / "src"],
        project_root=REPO_ROOT,
        baseline_path=REPO_ROOT / ".lint-baseline.json",
        cache_dir=cache_dir,
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_bench(touch: bool = True) -> dict:
    """Cold, warm, and (optionally) incremental lint over src/."""
    workdir = Path(tempfile.mkdtemp(prefix="bench-lint-"))
    cache_dir = workdir / "lint-cache"
    target = REPO_ROOT / TOUCH_TARGET
    original = target.read_text(encoding="utf-8") if touch else None
    try:
        cold, cold_s = _timed_run(cache_dir)
        warm, warm_s = _timed_run(cache_dir)
        stats = {
            "files_total": cold.files_total,
            "cold_seconds": round(cold_s, 4),
            "cold_reanalyzed": len(cold.reanalyzed),
            "warm_seconds": round(warm_s, 4),
            "warm_reanalyzed": len(warm.reanalyzed),
            "warm_cache_status": warm.cache_status,
            "warm_speedup": round(cold_s / warm_s, 2) if warm_s else None,
            "active_findings": len(warm.active_findings()),
        }
        if touch:
            target.write_text(original + "\n# bench touch\n", encoding="utf-8")
            incr, incr_s = _timed_run(cache_dir)
            stats.update(
                incremental_seconds=round(incr_s, 4),
                incremental_reanalyzed=len(incr.reanalyzed),
                incremental_cache_status=incr.cache_status,
            )
        return stats
    finally:
        if original is not None:
            target.write_text(original, encoding="utf-8")
        shutil.rmtree(workdir, ignore_errors=True)


def _report(stats: dict) -> str:
    lines = [
        f"files linted            {stats['files_total']}",
        f"cold run                {stats['cold_seconds']:.3f}s"
        f"  ({stats['cold_reanalyzed']} analyzed)",
        f"warm run                {stats['warm_seconds']:.3f}s"
        f"  ({stats['warm_reanalyzed']} analyzed,"
        f" {stats['warm_cache_status']})",
        f"warm speedup            {stats['warm_speedup']}x",
    ]
    if "incremental_seconds" in stats:
        lines.append(
            f"touch one leaf module   {stats['incremental_seconds']:.3f}s"
            f"  ({stats['incremental_reanalyzed']} analyzed,"
            f" {stats['incremental_cache_status']})"
        )
    lines.append(f"active findings         {stats['active_findings']}")
    return "\n".join(lines)


def check_budget(stats: dict, max_warm_seconds: float) -> list:
    """Budget violations for CI; empty when the cache holds up."""
    problems = []
    if stats["warm_reanalyzed"] != 0:
        problems.append(
            "warm run re-analyzed "
            f"{stats['warm_reanalyzed']} file(s); expected 0"
        )
    if stats["warm_cache_status"] != "hit":
        problems.append(
            f"warm cache status is {stats['warm_cache_status']!r}; "
            "expected 'hit'"
        )
    if stats["warm_seconds"] > max_warm_seconds:
        problems.append(
            f"warm run took {stats['warm_seconds']:.3f}s; "
            f"budget is {max_warm_seconds:.3f}s"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="PATH", help="write the stats as a JSON artifact"
    )
    parser.add_argument(
        "--max-warm-seconds",
        type=float,
        default=None,
        help="fail (exit 1) when the warm run exceeds this wall-clock budget",
    )
    parser.add_argument(
        "--no-touch",
        action="store_true",
        help="skip the incremental (touch-one-file) measurement",
    )
    args = parser.parse_args(argv)

    try:
        stats = run_bench(touch=not args.no_touch)
    except (OSError, ValueError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    emit("Lint engine: cold vs warm cache over src/", _report(stats))
    if args.json:
        try:
            Path(args.json).write_text(
                json.dumps(stats, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.json}")
    if args.max_warm_seconds is not None:
        problems = check_budget(stats, args.max_warm_seconds)
        if problems:
            for problem in problems:
                print(f"budget violation: {problem}", file=sys.stderr)
            return 1
    return 0


def test_warm_cache_budget(benchmark):
    """Pytest entry: warm run must be a full hit and beat the cold run."""
    stats = benchmark.pedantic(
        lambda: run_bench(touch=False), rounds=1, iterations=1
    )
    emit("Lint engine: cold vs warm cache over src/", _report(stats))
    assert stats["warm_reanalyzed"] == 0
    assert stats["warm_cache_status"] == "hit"
    assert stats["warm_seconds"] < stats["cold_seconds"]


if __name__ == "__main__":
    raise SystemExit(main())
