"""Lint engine cold-vs-warm benchmark with a CI warm-cache budget.

The incremental cache's value proposition is that an unchanged tree
costs almost nothing to re-lint.  This bench prices that claim on the
real ``src/`` tree: one cold run (empty cache), one warm run (full
hit), and two incremental runs -- one after touching a leaf module
(small import cone), one after touching ``service/wal.py`` (the
persistence tier, whose edit re-runs the interprocedural effect
rules over its whole import cone).
The warm run must re-analyze zero files; CI additionally enforces a
wall-clock budget so a cache regression fails the build instead of
silently slowing every push.

Also runs standalone without pytest::

    PYTHONPATH=src python benchmarks/bench_lint.py --json lint-bench.json
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

try:
    from benchmarks.conftest import emit
except ModuleNotFoundError:  # standalone `python benchmarks/bench_lint.py`
    def emit(title: str, body: str) -> None:
        bar = "=" * 72
        print(f"\n{bar}\n{title}\n{bar}\n{body}")

from repro.devtools.runner import run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
# A leaf module with a small import cone: touching it should
# invalidate only itself plus its few dependents, not the tree.
TOUCH_TARGET = "src/repro/signal/detrend.py"
# A persistence-tier module: touching it re-runs the effect-summary
# rules (DP/SD/CC04-CC05) over its import cone -- the expensive end of
# the incremental spectrum, priced separately so a regression in the
# interprocedural pass shows up here rather than in the leaf number.
SERVICE_TOUCH_TARGET = "src/repro/service/wal.py"


def _timed_run(cache_dir: Path):
    start = time.perf_counter()
    result = run_lint(
        [REPO_ROOT / "src"],
        project_root=REPO_ROOT,
        baseline_path=REPO_ROOT / ".lint-baseline.json",
        cache_dir=cache_dir,
    )
    elapsed = time.perf_counter() - start
    return result, elapsed


def _touched_run(cache_dir: Path, relpath: str):
    """Append a comment to ``relpath``, re-lint, restore the file."""
    target = REPO_ROOT / relpath
    original = target.read_text(encoding="utf-8")
    try:
        target.write_text(original + "\n# bench touch\n", encoding="utf-8")
        return _timed_run(cache_dir)
    finally:
        target.write_text(original, encoding="utf-8")


def run_bench(touch: bool = True) -> dict:
    """Cold, warm, and (optionally) incremental lint over src/."""
    workdir = Path(tempfile.mkdtemp(prefix="bench-lint-"))
    cache_dir = workdir / "lint-cache"
    try:
        cold, cold_s = _timed_run(cache_dir)
        warm, warm_s = _timed_run(cache_dir)
        stats = {
            "files_total": cold.files_total,
            "cold_seconds": round(cold_s, 4),
            "cold_reanalyzed": len(cold.reanalyzed),
            "warm_seconds": round(warm_s, 4),
            "warm_reanalyzed": len(warm.reanalyzed),
            "warm_cache_status": warm.cache_status,
            "warm_speedup": round(cold_s / warm_s, 2) if warm_s else None,
            "active_findings": len(warm.active_findings()),
        }
        if touch:
            incr, incr_s = _touched_run(cache_dir, TOUCH_TARGET)
            stats.update(
                incremental_seconds=round(incr_s, 4),
                incremental_reanalyzed=len(incr.reanalyzed),
                incremental_cache_status=incr.cache_status,
            )
            # Re-warm so the service touch is measured against a clean
            # cache, not the leaf touch's residue.
            _timed_run(cache_dir)
            svc, svc_s = _touched_run(cache_dir, SERVICE_TOUCH_TARGET)
            stats.update(
                service_touch_seconds=round(svc_s, 4),
                service_touch_reanalyzed=len(svc.reanalyzed),
                service_touch_cache_status=svc.cache_status,
            )
        return stats
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def _report(stats: dict) -> str:
    lines = [
        f"files linted            {stats['files_total']}",
        f"cold run                {stats['cold_seconds']:.3f}s"
        f"  ({stats['cold_reanalyzed']} analyzed)",
        f"warm run                {stats['warm_seconds']:.3f}s"
        f"  ({stats['warm_reanalyzed']} analyzed,"
        f" {stats['warm_cache_status']})",
        f"warm speedup            {stats['warm_speedup']}x",
    ]
    if "incremental_seconds" in stats:
        lines.append(
            f"touch one leaf module   {stats['incremental_seconds']:.3f}s"
            f"  ({stats['incremental_reanalyzed']} analyzed,"
            f" {stats['incremental_cache_status']})"
        )
    if "service_touch_seconds" in stats:
        lines.append(
            f"touch the WAL module    {stats['service_touch_seconds']:.3f}s"
            f"  ({stats['service_touch_reanalyzed']} analyzed,"
            f" {stats['service_touch_cache_status']})"
        )
    lines.append(f"active findings         {stats['active_findings']}")
    return "\n".join(lines)


def check_budget(stats: dict, max_warm_seconds: float) -> list:
    """Budget violations for CI; empty when the cache holds up."""
    problems = []
    if stats["warm_reanalyzed"] != 0:
        problems.append(
            "warm run re-analyzed "
            f"{stats['warm_reanalyzed']} file(s); expected 0"
        )
    if stats["warm_cache_status"] != "hit":
        problems.append(
            f"warm cache status is {stats['warm_cache_status']!r}; "
            "expected 'hit'"
        )
    if stats["warm_seconds"] > max_warm_seconds:
        problems.append(
            f"warm run took {stats['warm_seconds']:.3f}s; "
            f"budget is {max_warm_seconds:.3f}s"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", metavar="PATH", help="write the stats as a JSON artifact"
    )
    parser.add_argument(
        "--max-warm-seconds",
        type=float,
        default=None,
        help="fail (exit 1) when the warm run exceeds this wall-clock budget",
    )
    parser.add_argument(
        "--no-touch",
        action="store_true",
        help="skip the incremental (touch-one-file) measurement",
    )
    args = parser.parse_args(argv)

    try:
        stats = run_bench(touch=not args.no_touch)
    except (OSError, ValueError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    emit("Lint engine: cold vs warm cache over src/", _report(stats))
    if args.json:
        try:
            Path(args.json).write_text(
                json.dumps(stats, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.json}")
    if args.max_warm_seconds is not None:
        problems = check_budget(stats, args.max_warm_seconds)
        if problems:
            for problem in problems:
                print(f"budget violation: {problem}", file=sys.stderr)
            return 1
    return 0


def test_warm_cache_budget(benchmark):
    """Pytest entry: warm run must be a full hit and beat the cold run."""
    stats = benchmark.pedantic(
        lambda: run_bench(touch=False), rounds=1, iterations=1
    )
    emit("Lint engine: cold vs warm cache over src/", _report(stats))
    assert stats["warm_reanalyzed"] == 0
    assert stats["warm_cache_status"] == "hit"
    assert stats["warm_seconds"] < stats["cold_seconds"]


if __name__ == "__main__":
    raise SystemExit(main())
