"""Fig. 6 -- mean rater trust by class over 12 marketplace months.

Paper shape: starting from the 0.5 prior, reliable and careless raters
climb toward ~0.85+, while potential-collaborative raters sink toward
~0.4 within a few months and stay there.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import marketplace_detection
from repro.ratings.models import RaterClass

from benchmarks.conftest import emit, run_once


def test_fig6_trust_evolution(benchmark):
    result = run_once(benchmark, lambda: marketplace_detection.run(seed=3))
    emit(
        "Fig. 6 -- mean trust by rater class",
        marketplace_detection.format_report(result).split("  Fig. 7")[0],
    )
    series = result.mean_trust
    reliable = series[RaterClass.RELIABLE]
    careless = series[RaterClass.CARELESS]
    pc = series[RaterClass.POTENTIAL_COLLABORATIVE]

    # Honest classes rise well above the prior; PC raters sink below it.
    assert reliable[-1] > 0.8
    assert careless[-1] > 0.75
    assert pc[-1] < 0.45
    # The separation is monotone-ish: PC trust never recrosses honest.
    assert np.all(pc < reliable)
    # PC trust trends down over the year.
    assert pc[-1] < pc[0]
