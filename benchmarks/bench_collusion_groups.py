"""Extension -- collusion-group recovery from co-suspicion structure.

The full 12-month marketplace: flagged windows feed a co-suspicion
graph whose strong components recover the recruited group at ~0.94
precision / ~0.86 recall -- pairwise evidence complements Procedure 2's
per-rater trust (0.81 detection on the same run).
"""

from __future__ import annotations

from repro.experiments import collusion_groups

from benchmarks.conftest import emit, run_once


def test_collusion_group_recovery(benchmark):
    result = run_once(benchmark, lambda: collusion_groups.run(seed=3))
    emit(
        "Extension -- collusion-group recovery",
        collusion_groups.format_report(result),
    )
    assert result.membership_precision > 0.8
    assert result.membership_recall > 0.7
    assert result.largest_group_purity > 0.8
    # The group route is competitive with per-rater trust detection.
    assert result.membership_recall > result.per_rater_detection - 0.15
