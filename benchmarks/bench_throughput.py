"""Micro-benchmarks -- component throughput.

Unlike the figure benches (run-once experiment regenerations), these
use pytest-benchmark's repeated timing to track the hot paths a
deployment cares about: AR fitting, windowed detection, filtering, the
streaming detector, and a full marketplace month through the pipeline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.detectors.ar_detector import ARModelErrorDetector
from repro.detectors.online import OnlineARDetector
from repro.filters.beta_quantile import BetaQuantileFilter
from repro.ratings.models import Rating
from repro.ratings.stream import RatingStream
from repro.signal.ar import arburg, arcov, aryule
from repro.signal.windows import CountWindower
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative
from repro.simulation.marketplace import MarketplaceConfig, generate_marketplace
from repro.simulation.pipeline import PipelineConfig, run_marketplace


@pytest.fixture(scope="module")
def window_50(rng_module=np.random.default_rng(0)):
    return np.clip(rng_module.normal(0.7, 0.3, size=50), 0, 1)


@pytest.fixture(scope="module")
def trace():
    return generate_illustrative(IllustrativeConfig(), np.random.default_rng(0))


@pytest.mark.parametrize("fit", [arcov, aryule, arburg], ids=lambda f: f.__name__)
def test_ar_fit_throughput(benchmark, fit, window_50):
    model = benchmark(fit, window_50, 4)
    assert 0.0 <= model.normalized_error <= 1.0


def test_detector_throughput(benchmark, trace):
    detector = ARModelErrorDetector(
        order=4, threshold=0.10, windower=CountWindower(size=50, step=10)
    )
    report = benchmark(detector.detect, trace.attacked)
    assert report.verdicts


def test_filter_throughput(benchmark, trace):
    rating_filter = BetaQuantileFilter(sensitivity=0.1)
    result = benchmark(rating_filter.filter, trace.attacked)
    assert len(result.kept) + len(result.removed) == len(trace.attacked)


def test_online_detector_throughput(benchmark, trace):
    ratings = list(trace.attacked)

    def stream_all():
        detector = OnlineARDetector(window_size=50, stride=5, threshold=0.10)
        detector.observe_many(ratings)
        return detector

    detector = benchmark(stream_all)
    assert detector.n_seen == len(ratings)


def test_marketplace_month_throughput(benchmark):
    config = MarketplaceConfig(
        n_reliable=120, n_careless=60, n_pc=60, n_months=1, p_rate=0.04
    )

    def one_month():
        world = generate_marketplace(config, np.random.default_rng(1))
        return run_marketplace(world, PipelineConfig())

    run = benchmark.pedantic(one_month, rounds=3, iterations=1)
    assert len(run.monthly_trust) == 1
