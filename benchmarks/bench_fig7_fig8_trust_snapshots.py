"""Figs. 7/8 -- per-rater trust snapshots at months 6 and 12.

Paper: at month 6, 72 % of PC raters are detected (trust below
threshold_sus = 0.5) with false alarms of 1 % (reliable) and 3 %
(careless); by month 12 detection reaches 87 % with zero false alarms.
Reproduced shape: detection grows month-over-month into the high
70s-90s while honest false alarms stay at (or near) zero.
"""

from __future__ import annotations

from repro.experiments import marketplace_detection

from benchmarks.conftest import emit, run_once


def test_fig7_fig8_trust_snapshots(benchmark):
    result = run_once(benchmark, lambda: marketplace_detection.run(seed=3))
    d6, d12 = result.detection_month6, result.detection_month12
    body = "\n".join(
        [
            f"month 6 : detection paper 0.72 | measured {d6.detection_rate:.2f}; "
            f"false alarms {[round(v, 3) for v in d6.false_alarm_rates.values()]} "
            "(paper: 0.01 reliable, 0.03 careless)",
            f"month 12: detection paper 0.87 | measured {d12.detection_rate:.2f}; "
            f"false alarms {[round(v, 3) for v in d12.false_alarm_rates.values()]} "
            "(paper: 0.00)",
            f"trust snapshot sizes: {len(result.snapshot_month6)} raters",
        ]
    )
    emit("Figs. 7/8 -- rater trust snapshots and detection", body)

    # Detection improves (or holds) from month 6 to month 12 and ends
    # in the paper's band.
    assert d12.detection_rate >= d6.detection_rate - 0.05
    assert d12.detection_rate > 0.7
    # False alarms at month 12 are near zero for both honest classes.
    assert max(d12.false_alarm_rates.values()) <= 0.03
