"""Extension -- the detectability surface over attack bias and power.

Maps detection ratio and achieved damage over a grid of campaign
parameters.  The paper's structural claim appears as the grid's shape:
detection is driven by recruitment *volume*, nearly independent of the
bias magnitude, so lowering the bias buys the attacker almost no
stealth -- while the volume needed for real damage is exactly what the
detector keys on.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import sensitivity

from benchmarks.conftest import emit, run_once

N_RUNS = 20


def test_sensitivity_surface(benchmark):
    result = run_once(benchmark, lambda: sensitivity.run(n_runs=N_RUNS, seed=0))
    emit("Extension -- detectability surface", sensitivity.format_report(result))

    biases, powers = result.biases, result.powers
    # Detection grows strongly with power at every bias level.
    for bias in biases:
        low = result.detection[(bias, powers[0])]
        high = result.detection[(bias, powers[-1])]
        assert high > low + 0.4
    # ...but is nearly flat in the bias at fixed high power.
    at_full_power = [result.detection[(b, 1.0)] for b in biases]
    assert max(at_full_power) - min(at_full_power) < 0.35
    # Damage grows with both axes (the attack grid is monotone).
    for bias in biases:
        assert (
            result.damage[(bias, powers[-1])] > result.damage[(bias, powers[0])]
        )
    for power in powers:
        assert (
            result.damage[(biases[-1], power)]
            >= result.damage[(biases[0], power)] - 0.01
        )
    # The attacker's quiet corner does little damage.
    assert result.damage[(biases[0], powers[0])] < 0.05
