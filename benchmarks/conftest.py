"""Shared helpers for the benchmark suite.

Every bench regenerates one paper artifact (table or figure), times it
with pytest-benchmark, and prints the paper-vs-measured report so the
numbers land in the bench log.  Heavy experiments run exactly once
(``pedantic(rounds=1)``); the timing is informative, the printed series
are the point.
"""

from __future__ import annotations


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def emit(title: str, body: str) -> None:
    """Print a bench report block with a recognizable banner."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}")
