"""Extension -- whitewashing and the newcomer-prior defense.

Detected colluders launder their identities monthly; the defense starts
every fresh identity with pessimistic prior evidence so a laundered
identity carries no aggregation weight until it earns trust honestly.
"""

from __future__ import annotations

from repro.experiments import whitewashing

from benchmarks.conftest import emit, run_once


def test_whitewashing_defense(benchmark):
    result = run_once(benchmark, lambda: whitewashing.run(seed=3))
    emit(
        "Extension -- whitewashing vs. newcomer prior",
        whitewashing.format_report(result),
    )
    outcomes = result.outcomes
    # Identity churn launders the malicious flag entirely...
    assert outcomes["stable_ids"].detection_month12 > 0.6
    assert outcomes["whitewashing"].detection_month12 < 0.1
    # ...but the pessimistic prior makes laundering self-defeating.
    assert outcomes["whitewashing_defended"].detection_month12 > 0.6
    # The trust-gated aggregate keeps damage bounded in every variant.
    for name, outcome in outcomes.items():
        assert abs(outcome.dishonest_errors.mean_signed_error) < 0.05, name
