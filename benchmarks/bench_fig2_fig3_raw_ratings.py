"""Fig. 2 / Fig. 3 -- illustrative raw ratings and their histograms.

Regenerates the paper's look-at-the-data artifacts: the attacked trace
(honest + type 1 + type 2 channels) and the value histograms showing
that honest and collaborative ratings overlap almost entirely in value.
"""

from __future__ import annotations

from repro.experiments import fig2_fig3

from benchmarks.conftest import emit, run_once


def test_fig2_fig3_raw_ratings(benchmark):
    result = run_once(benchmark, lambda: fig2_fig3.run(seed=0))
    emit("Fig. 2 / Fig. 3 -- raw ratings and histograms", fig2_fig3.format_report(result))
    # Shape assertions: the attack injects unfair ratings whose values
    # hide inside the honest histogram.
    assert result.trace.n_unfair > 10
    assert result.overlap_fraction > 0.8
