"""Ablation -- AR estimator, model order, window size, and bias sign.

DESIGN.md §7 design choices, quantified on the illustrative scenario.
Each configuration's quality is the ROC AUC of the per-run window-error
minima (attacked vs. honest traces) over a seed batch: higher AUC means
the configuration separates campaigns from honest noise better at
every threshold simultaneously.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.detectors.ar_detector import ARModelErrorDetector
from repro.evaluation.montecarlo import monte_carlo
from repro.evaluation.roc import roc_from_scores
from repro.signal.windows import CountWindower
from repro.simulation.illustrative import IllustrativeConfig, generate_illustrative

from benchmarks.conftest import emit, run_once

N_SEEDS = 30


def separation_auc(detector, config=None, n_seeds=N_SEEDS, seed=0):
    """ROC AUC of attacked-vs-honest window-error minima."""
    config = config if config is not None else IllustrativeConfig()

    def one_run(rng):
        trace = generate_illustrative(config, rng)
        attacked = detector.window_errors(trace.attacked)
        honest = detector.window_errors(trace.honest)
        return (
            min((v.statistic for v in attacked), default=1.0),
            min((v.statistic for v in honest), default=1.0),
        )

    results = monte_carlo(one_run, n_runs=n_seeds, master_seed=seed)
    attacked = [o[0] for o in results.outcomes]
    honest = [o[1] for o in results.outcomes]
    return roc_from_scores(attacked, honest).auc()


def make_detector(method="covariance", order=4, window=50):
    return ARModelErrorDetector(
        order=order,
        threshold=0.10,
        method=method,
        windower=CountWindower(size=window, step=10),
    )


def test_ablation_ar_estimator(benchmark):
    def sweep():
        return {
            method: separation_auc(make_detector(method=method))
            for method in ("covariance", "autocorrelation", "burg")
        }

    aucs = run_once(benchmark, sweep)
    emit(
        "Ablation -- AR estimator",
        "\n".join(f"  {m:<16} AUC {a:.3f}" for m, a in aucs.items()),
    )
    # All three estimators separate well; the paper's covariance choice
    # is competitive with the alternatives.
    for method, auc in aucs.items():
        assert auc > 0.85, method
    assert aucs["covariance"] >= max(aucs.values()) - 0.05


def test_ablation_model_order(benchmark):
    def sweep():
        return {order: separation_auc(make_detector(order=order)) for order in (1, 2, 4, 6, 8)}

    aucs = run_once(benchmark, sweep)
    emit(
        "Ablation -- AR model order",
        "\n".join(f"  order {o}: AUC {a:.3f}" for o, a in aucs.items()),
    )
    # Detection is not hypersensitive to the (unspecified) order.
    assert min(aucs.values()) > 0.8


def test_ablation_window_size(benchmark):
    def sweep():
        return {
            window: separation_auc(make_detector(window=window))
            for window in (30, 50, 80)
        }

    aucs = run_once(benchmark, sweep)
    emit(
        "Ablation -- window size (ratings per AR window)",
        "\n".join(f"  window {w}: AUC {a:.3f}" for w, a in aucs.items()),
    )
    # The paper's 50-rating window sits in the sweet spot: big enough
    # to stabilize the error, small enough to stay inside the campaign.
    assert aucs[50] >= aucs[30] - 0.05
    assert min(aucs.values()) > 0.7


def test_ablation_bias_sign_asymmetry(benchmark):
    def sweep():
        detector = make_detector()
        boost = separation_auc(detector)
        downgrade_config = replace(
            IllustrativeConfig(), bias_shift1=-0.2, bias_shift2=-0.15
        )
        downgrade = separation_auc(detector, config=downgrade_config)
        return {"boost": boost, "downgrade": downgrade}

    aucs = run_once(benchmark, sweep)
    emit(
        "Ablation -- campaign bias sign",
        "\n".join(f"  {k:<10} AUC {a:.3f}" for k, a in aucs.items()),
    )
    # The energy normalization makes boosts slightly easier to spot
    # than downgrades (the lowered mean raises the normalized error),
    # but both separate from honest noise.
    assert aucs["boost"] > 0.85
    assert aucs["downgrade"] > 0.6
