"""Extension -- adaptive attacks against the AR detector.

The paper's future work ("study the possible attacks to the proposed
solutions") quantified: each detector-aware strategy's evasion (ROC
AUC, lower evades better) and damage (achieved mean shift in the attack
window).
"""

from __future__ import annotations

from repro.experiments import adaptive_attacks

from benchmarks.conftest import emit, run_once

N_RUNS = 30


def test_adaptive_attacks(benchmark):
    result = run_once(benchmark, lambda: adaptive_attacks.run(n_runs=N_RUNS, seed=0))
    emit(
        "Extension -- adaptive attacks vs. the AR detector",
        adaptive_attacks.format_report(result),
    )
    outcomes = result.outcomes
    # The paper's channel is near-perfectly detectable.
    assert outcomes["naive_tight"].auc > 0.9
    # Camouflage trades damage for evasion; ramping barely evades.
    assert outcomes["camouflage"].auc < outcomes["naive_tight"].auc - 0.1
    assert outcomes["camouflage"].damage < outcomes["naive_tight"].damage
    assert outcomes["ramp"].auc > outcomes["camouflage"].auc
    # Every strategy still moves the aggregate (the attacks are real).
    for name, outcome in outcomes.items():
        assert outcome.damage > 0.02, name
