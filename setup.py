"""Legacy setup shim (the environment lacks the `wheel` package, which
modern editable installs require); metadata lives in pyproject.toml."""

from setuptools import setup

setup()
