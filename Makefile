PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-json lint-update-baseline bench

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.devtools src

lint-json:
	$(PYTHON) -m repro.devtools src --format=json

lint-update-baseline:
	$(PYTHON) -m repro.devtools src --update-baseline

bench:
	$(PYTHON) benchmarks/bench_service_throughput.py
