PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint lint-json lint-strict lint-update-baseline bench bench-lint

test:
	$(PYTHON) -m pytest -x -q

lint:
	$(PYTHON) -m repro.devtools src

lint-strict:
	$(PYTHON) -m repro.devtools src --strict

lint-json:
	$(PYTHON) -m repro.devtools src --format=json

lint-update-baseline:
	$(PYTHON) -m repro.devtools src --update-baseline

bench:
	$(PYTHON) benchmarks/bench_service_throughput.py

bench-lint:
	$(PYTHON) benchmarks/bench_lint.py --json lint-bench.json
